package dtdmap

import (
	"os"
	"strings"
	"testing"

	"sgmldb/internal/object"
	"sgmldb/internal/sgml"
)

func figure1(t *testing.T) *sgml.DTD {
	t.Helper()
	src, err := os.ReadFile("../../testdata/article.dtd")
	if err != nil {
		t.Fatal(err)
	}
	dtd, err := sgml.ParseDTD(string(src))
	if err != nil {
		t.Fatal(err)
	}
	return dtd
}

func articleMapping(t *testing.T) *Mapping {
	t.Helper()
	m, err := MapDTD(figure1(t))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func loadArticle(t *testing.T) (*Mapping, *Loader, object.OID) {
	t.Helper()
	m := articleMapping(t)
	src, err := os.ReadFile("../../testdata/article.sgml")
	if err != nil {
		t.Fatal(err)
	}
	doc, err := sgml.ParseDocument(m.DTD, string(src))
	if err != nil {
		t.Fatal(err)
	}
	l := NewLoader(m)
	oid, err := l.Load(doc)
	if err != nil {
		t.Fatal(err)
	}
	return m, l, oid
}

// TestFigure3Schema reproduces experiment F3: the generated schema must
// match the paper's Figure 3 class by class.
func TestFigure3Schema(t *testing.T) {
	m := articleMapping(t)
	h := m.Schema.Hierarchy()

	typeOf := func(class string) object.Type {
		t.Helper()
		ty, ok := h.TypeOf(class)
		if !ok {
			t.Fatalf("class %s missing", class)
		}
		return ty
	}

	// class Article public type tuple (title: Title, authors: list(Author),
	// affil: Affil, abstract: Abstract, sections: list(Section),
	// acknowl: Acknowl, private status: string)
	art := typeOf("Article").(object.TupleType)
	wantArt := object.TupleOf(
		object.TField{Name: "title", Type: object.Class("Title")},
		object.TField{Name: "authors", Type: object.ListOf(object.Class("Author"))},
		object.TField{Name: "affil", Type: object.Class("Affil")},
		object.TField{Name: "abstract", Type: object.Class("Abstract")},
		object.TField{Name: "sections", Type: object.ListOf(object.Class("Section"))},
		object.TField{Name: "acknowl", Type: object.Class("Acknowl")},
		object.TField{Name: "status", Type: object.StringType},
	)
	if !object.TypeEqual(art, wantArt) {
		t.Errorf("Article type:\n got %s\nwant %s", art, wantArt)
	}
	if !m.Schema.IsPrivate("Article", "status") {
		t.Error("status must be private")
	}

	// class Title inherit Text (and Author, Affil, Abstract, Caption,
	// Acknowl, Paragr).
	for _, c := range []string{"Title", "Author", "Affil", "Abstract", "Caption", "Acknowl", "Paragr"} {
		if !h.IsSubclass(c, TextClass) {
			t.Errorf("%s must inherit Text", c)
		}
	}

	// class Section public type union (a1: tuple(title: Title,
	// bodies: list(Body)), a2: tuple(title: Title, bodies: list(Body),
	// subsectns: list(Subsectn)))
	sec := typeOf("Section")
	wantSec := object.UnionOf(
		object.TField{Name: "a1", Type: object.TupleOf(
			object.TField{Name: "title", Type: object.Class("Title")},
			object.TField{Name: "bodies", Type: object.ListOf(object.Class("Body"))},
		)},
		object.TField{Name: "a2", Type: object.TupleOf(
			object.TField{Name: "title", Type: object.Class("Title")},
			object.TField{Name: "bodies", Type: object.ListOf(object.Class("Body"))},
			object.TField{Name: "subsectns", Type: object.ListOf(object.Class("Subsectn"))},
		)},
	)
	if !object.TypeEqual(sec, wantSec) {
		t.Errorf("Section type:\n got %s\nwant %s", sec, wantSec)
	}

	// class Subsectn public type tuple (title: Title, bodies: list(Body))
	sub := typeOf("Subsectn")
	wantSub := object.TupleOf(
		object.TField{Name: "title", Type: object.Class("Title")},
		object.TField{Name: "bodies", Type: object.ListOf(object.Class("Body"))},
	)
	if !object.TypeEqual(sub, wantSub) {
		t.Errorf("Subsectn type:\n got %s\nwant %s", sub, wantSub)
	}

	// class Body public type union (figure: Figure, paragr: Paragr)
	body := typeOf("Body")
	wantBody := object.UnionOf(
		object.TField{Name: "figure", Type: object.Class("Figure")},
		object.TField{Name: "paragr", Type: object.Class("Paragr")},
	)
	if !object.TypeEqual(body, wantBody) {
		t.Errorf("Body type:\n got %s\nwant %s", body, wantBody)
	}

	// class Figure public type tuple (picture: Picture, caption: Caption,
	// private label: list(Object))
	fig := typeOf("Figure")
	wantFig := object.TupleOf(
		object.TField{Name: "picture", Type: object.Class("Picture")},
		object.TField{Name: "caption", Type: object.Class("Caption")},
		object.TField{Name: "label", Type: object.ListOf(object.Any)},
	)
	if !object.TypeEqual(fig, wantFig) {
		t.Errorf("Figure type:\n got %s\nwant %s", fig, wantFig)
	}
	if !m.Schema.IsPrivate("Figure", "label") {
		t.Error("label must be private")
	}

	// class Picture inherit Bitmap.
	if !h.IsSubclass("Picture", BitmapClass) {
		t.Error("Picture must inherit Bitmap")
	}

	// class Paragr inherit Text, with private reflabel: Object.
	par := typeOf("Paragr").(object.TupleType)
	if ty, ok := par.Get("reflabel"); !ok || !object.TypeEqual(ty, object.Any) {
		t.Errorf("Paragr.reflabel = %v", ty)
	}
	if !m.Schema.IsPrivate("Paragr", "reflabel") {
		t.Error("reflabel must be private")
	}

	// name Articles: list (Article).
	if m.RootName != "Articles" {
		t.Errorf("root = %s", m.RootName)
	}
	rt, ok := m.Schema.RootType("Articles")
	if !ok || !object.TypeEqual(rt, object.ListOf(object.Class("Article"))) {
		t.Errorf("root type = %v", rt)
	}

	// Figure 3 constraints on Article.
	cons := m.Schema.Constraints("Article")
	var strs []string
	for _, c := range cons {
		strs = append(strs, c.String())
	}
	joined := strings.Join(strs, "; ")
	for _, want := range []string{
		"title != nil", "authors != list()", "abstract != nil",
		`status in set("final", "draft")`,
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("Article constraints missing %q in %q", want, joined)
		}
	}
	// Body: figure != nil | paragr != nil.
	bodyCons := m.Schema.Constraints("Body")
	if len(bodyCons) == 0 || !strings.Contains(bodyCons[0].String(), "|") {
		t.Errorf("Body constraint = %v", bodyCons)
	}
	// Section: per-alternative blocks.
	secCons := m.Schema.Constraints("Section")
	var secStr []string
	for _, c := range secCons {
		secStr = append(secStr, c.String())
	}
	sj := strings.Join(secStr, "; ")
	if !strings.Contains(sj, "a1.title != nil") || !strings.Contains(sj, "a2.subsectns != list()") {
		t.Errorf("Section constraints = %q", sj)
	}
}

// TestFigure2Load reproduces experiment F2 end to end: the Figure 2
// instance becomes a consistent database.
func TestFigure2Load(t *testing.T) {
	m, l, oid := loadArticle(t)
	inst := l.Instance
	if errs := inst.Check(); len(errs) != 0 {
		t.Fatalf("loaded instance violates the schema: %v", errs)
	}
	// Root lists the document.
	root, ok := inst.Root("Articles")
	if !ok {
		t.Fatal("Articles root missing")
	}
	lst := root.(*object.List)
	if lst.Len() != 1 || !object.Equal(lst.At(0), oid) {
		t.Errorf("Articles = %s", lst)
	}
	// The article object: title/authors/affil/abstract/sections/acknowl/status.
	v, _ := inst.Deref(oid)
	art := v.(*object.Tuple)
	if got := art.Names(); strings.Join(got, ",") != "title,authors,affil,abstract,sections,acknowl,status" {
		t.Errorf("article fields = %v", got)
	}
	if s, _ := art.Get("status"); !object.Equal(s, object.String_("final")) {
		t.Errorf("status = %s", s)
	}
	authors, _ := art.Get("authors")
	if authors.(*object.List).Len() != 4 {
		t.Errorf("authors = %s", authors)
	}
	// First author's content.
	a0 := authors.(*object.List).At(0).(object.OID)
	av, _ := inst.Deref(a0)
	if c, _ := av.(*object.Tuple).Get("content"); !object.Equal(c, object.String_("V. Christophides")) {
		t.Errorf("author[0] = %s", c)
	}
	if cls, _ := inst.ClassOf(a0); cls != "Author" {
		t.Errorf("author class = %s", cls)
	}
	// Sections are union values marked a1 (no subsections in Figure 2).
	sections, _ := art.Get("sections")
	secs := sections.(*object.List)
	if secs.Len() != 2 {
		t.Fatalf("sections = %s", secs)
	}
	s0, _ := inst.Deref(secs.At(0).(object.OID))
	u, ok := s0.(*object.Union_)
	if !ok || u.Marker != "a1" {
		t.Fatalf("section value = %s", s0)
	}
	st := u.Value.(*object.Tuple)
	titleOID, _ := st.Get("title")
	tv, _ := inst.Deref(titleOID.(object.OID))
	if c, _ := tv.(*object.Tuple).Get("content"); !object.Equal(c, object.String_("Introduction")) {
		t.Errorf("section title = %s", c)
	}
	bodies, _ := st.Get("bodies")
	if bodies.(*object.List).Len() != 1 {
		t.Errorf("bodies = %s", bodies)
	}
	// Bodies are union values marked paragr.
	b0, _ := inst.Deref(bodies.(*object.List).At(0).(object.OID))
	bu := b0.(*object.Union_)
	if bu.Marker != "paragr" {
		t.Errorf("body marker = %s", bu.Marker)
	}
	// π extents: Text superclass covers all text subclasses.
	if len(inst.Extent("Text")) == 0 {
		t.Error("Text extent empty")
	}
	if len(inst.Extent("Section")) != 2 {
		t.Error("Section extent")
	}
	// TextOf reconstructs document text.
	txt := TextOf(inst, oid)
	for _, want := range []string{
		"From Structured Documents to Novel Query Facilities",
		"V. Christophides", "Introduction", "SGML preliminaries",
	} {
		if !strings.Contains(txt, want) {
			t.Errorf("TextOf missing %q", want)
		}
	}
	if strings.Contains(txt, "final") {
		t.Error("TextOf must not leak private attributes")
	}
	_ = m
}

func TestLoadMultipleDocuments(t *testing.T) {
	m := articleMapping(t)
	l := NewLoader(m)
	src, _ := os.ReadFile("../../testdata/article.sgml")
	for i := 0; i < 3; i++ {
		doc, err := sgml.ParseDocument(m.DTD, string(src))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := l.Load(doc); err != nil {
			t.Fatal(err)
		}
	}
	root, _ := l.Instance.Root("Articles")
	if root.(*object.List).Len() != 3 {
		t.Errorf("Articles = %s", root)
	}
	if len(l.Documents()) != 3 {
		t.Error("Documents()")
	}
	if errs := l.Instance.Check(); len(errs) != 0 {
		t.Fatalf("multi-document instance invalid: %v", errs)
	}
}

func TestSectionWithSubsections(t *testing.T) {
	m := articleMapping(t)
	src := `<article status="draft">
<title>T</title><author>A<affil>F<abstract>Ab
<section><title>S1</title>
<subsectn><title>SS1</title><body><paragr>deep text</body></subsectn>
</section>
<acknowl>ack
</article>`
	doc, err := sgml.ParseDocument(m.DTD, src)
	if err != nil {
		t.Fatal(err)
	}
	l := NewLoader(m)
	oid, err := l.Load(doc)
	if err != nil {
		t.Fatal(err)
	}
	if errs := l.Instance.Check(); len(errs) != 0 {
		t.Fatalf("instance invalid: %v", errs)
	}
	v, _ := l.Instance.Deref(oid)
	sections, _ := v.(*object.Tuple).Get("sections")
	s0, _ := l.Instance.Deref(sections.(*object.List).At(0).(object.OID))
	u := s0.(*object.Union_)
	if u.Marker != "a2" {
		t.Fatalf("section with subsections must be marked a2, got %s", u.Marker)
	}
	subs, _ := u.Value.(*object.Tuple).Get("subsectns")
	if subs.(*object.List).Len() != 1 {
		t.Error("subsectns")
	}
	// Bodies list in the a2 branch may be empty (body*).
	bodies, _ := u.Value.(*object.Tuple).Get("bodies")
	if bodies.(*object.List).Len() != 0 {
		t.Error("a2 bodies should be empty here")
	}
}

func TestIDREFBecomesObjectReference(t *testing.T) {
	m := articleMapping(t)
	src := `<article status="draft">
<title>T</title><author>A<affil>F<abstract>Ab
<section><title>S</title>
<body><figure label="fig-1"><picture sizex="10cm"></figure></body>
<body><paragr reflabel="fig-1">see the figure</body>
</section>
<acknowl>ack
</article>`
	doc, err := sgml.ParseDocument(m.DTD, src)
	if err != nil {
		t.Fatal(err)
	}
	l := NewLoader(m)
	if _, err := l.Load(doc); err != nil {
		t.Fatal(err)
	}
	inst := l.Instance
	figs := inst.Extent("Figure")
	pars := inst.Extent("Paragr")
	if len(figs) != 1 || len(pars) != 1 {
		t.Fatalf("extents: %d figures, %d paragraphs", len(figs), len(pars))
	}
	// The paragraph's reflabel holds the figure's oid (Figure 3:
	// private reflabel: Object).
	pv, _ := inst.Deref(pars[0])
	ref, _ := pv.(*object.Tuple).Get("reflabel")
	if !object.Equal(ref, figs[0]) {
		t.Errorf("reflabel = %s, want %s", ref, figs[0])
	}
	// The figure's label holds the referencing paragraph (private label:
	// list(Object)).
	fv, _ := inst.Deref(figs[0])
	label, _ := fv.(*object.Tuple).Get("label")
	ll := label.(*object.List)
	if ll.Len() != 1 || !object.Equal(ll.At(0), pars[0]) {
		t.Errorf("label = %s", label)
	}
	// Picture attrs: given sizex overrides the default.
	pics := inst.Extent("Picture")
	picv, _ := inst.Deref(pics[0])
	if sx, _ := picv.(*object.Tuple).Get("sizex"); !object.Equal(sx, object.String_("10cm")) {
		t.Errorf("sizex = %s", sx)
	}
}

func TestAndGroupBecomesPermutationUnion(t *testing.T) {
	dtd, err := sgml.ParseDTD(`
<!ELEMENT letter - - (preamble, content)>
<!ELEMENT preamble - O (to & from)>
<!ELEMENT to - O (#PCDATA)>
<!ELEMENT from - O (#PCDATA)>
<!ELEMENT content - O (#PCDATA)>`)
	if err != nil {
		t.Fatal(err)
	}
	m, err := MapDTD(dtd)
	if err != nil {
		t.Fatal(err)
	}
	ty, _ := m.Schema.Hierarchy().TypeOf("Preamble")
	u, ok := ty.(object.UnionType)
	if !ok || u.Len() != 2 {
		t.Fatalf("Preamble type = %s", ty)
	}
	// Each alternative is an ordered tuple over to/from in one order —
	// the Letters type of Section 5.3.
	a1, _ := u.Get("a1")
	t1 := a1.(object.TupleType)
	if t1.Len() != 2 {
		t.Fatalf("a1 = %s", a1)
	}
	names1 := []string{t1.At(0).Name, t1.At(1).Name}
	a2, _ := u.Get("a2")
	t2 := a2.(object.TupleType)
	names2 := []string{t2.At(0).Name, t2.At(1).Name}
	if names1[0] == names2[0] {
		t.Errorf("permutations must differ: %v vs %v", names1, names2)
	}
	// Loading both orders yields different markers.
	l := NewLoader(m)
	for _, src := range []string{
		`<letter><preamble><to>Alice<from>Bob</preamble><content>hi</letter>`,
		`<letter><preamble><from>Bob<to>Alice</preamble><content>hi</letter>`,
	} {
		doc, err := sgml.ParseDocument(dtd, src)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := l.Load(doc); err != nil {
			t.Fatal(err)
		}
	}
	pres := l.Instance.Extent("Preamble")
	if len(pres) != 2 {
		t.Fatal("preambles")
	}
	v0, _ := l.Instance.Deref(pres[0])
	v1, _ := l.Instance.Deref(pres[1])
	m0 := v0.(*object.Union_).Marker
	m1 := v1.(*object.Union_).Marker
	if m0 == m1 {
		t.Errorf("both orders mapped to marker %s", m0)
	}
	if errs := l.Instance.Check(); len(errs) != 0 {
		t.Fatalf("letters instance invalid: %v", errs)
	}
}

func TestMixedContentModel(t *testing.T) {
	dtd, err := sgml.ParseDTD(`
<!ELEMENT note - - ((#PCDATA | emph)*)>
<!ELEMENT emph - - (#PCDATA)>`)
	if err != nil {
		t.Fatal(err)
	}
	m, err := MapDTD(dtd)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := sgml.ParseDocument(dtd, `<note>plain <emph>strong</emph> tail</note>`)
	if err != nil {
		t.Fatal(err)
	}
	l := NewLoader(m)
	oid, err := l.Load(doc)
	if err != nil {
		t.Fatal(err)
	}
	txt := TextOf(l.Instance, oid)
	if txt != "plain strong tail" {
		t.Errorf("TextOf = %q", txt)
	}
	if errs := l.Instance.Check(); len(errs) != 0 {
		t.Fatalf("mixed instance invalid: %v", errs)
	}
}

func TestAnyContentMapping(t *testing.T) {
	dtd, err := sgml.ParseDTD(`
<!ELEMENT doc - - ANY>
<!ELEMENT a - O (#PCDATA)>`)
	if err != nil {
		t.Fatal(err)
	}
	m, err := MapDTD(dtd)
	if err != nil {
		t.Fatal(err)
	}
	ty, _ := m.Schema.Hierarchy().TypeOf("Doc")
	tt := ty.(object.TupleType)
	if c, ok := tt.Get("contents"); !ok || !object.TypeEqual(c, object.ListOf(object.Any)) {
		t.Errorf("Doc type = %s", ty)
	}
	doc, err := sgml.ParseDocument(dtd, `<doc><a>x<a>y</doc>`)
	if err != nil {
		t.Fatal(err)
	}
	l := NewLoader(m)
	oid, err := l.Load(doc)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := l.Instance.Deref(oid)
	contents, _ := v.(*object.Tuple).Get("contents")
	if contents.(*object.List).Len() != 2 {
		t.Errorf("contents = %s", contents)
	}
}

func TestClassNameCollisions(t *testing.T) {
	dtd, err := sgml.ParseDTD(`
<!ELEMENT doc - - (text, bitmap)>
<!ELEMENT text - O (#PCDATA)>
<!ELEMENT bitmap - O (#PCDATA)>`)
	if err != nil {
		t.Fatal(err)
	}
	m, err := MapDTD(dtd)
	if err != nil {
		t.Fatal(err)
	}
	// Element "text" must not collide with the predefined Text class.
	c := m.ClassFor("text")
	if c == TextClass {
		t.Errorf("class for element text = %s", c)
	}
	if m.ClassFor("bitmap") == BitmapClass {
		t.Error("class for element bitmap collides")
	}
	if m.ElementFor(c) != "text" {
		t.Error("ElementFor inverse")
	}
}

func TestStorageStats(t *testing.T) {
	_, l, _ := loadArticle(t)
	st := l.Instance.Stats()
	if st.Objects < 15 {
		t.Errorf("expected a populated instance, got %d objects", st.Objects)
	}
	if st.PerClass["Author"] != 4 {
		t.Errorf("PerClass[Author] = %d", st.PerClass["Author"])
	}
}
