package sgmldb

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"sgmldb/internal/faultpoint"
)

// The crash-recovery chaos suite (make crash runs it under -race). Each
// test arms a faultpoint on the durable commit path with an injector that
// *photographs the data directory at the seam* — exactly the bytes a
// process killed at that instant would leave behind — and then fails the
// operation. Reopening the photograph as a fresh process recovers; the
// suite asserts recovery always lands on the pre-operation or
// post-operation durable state, never a hybrid, and that the pinned
// reference query answers identically to the corresponding pre-crash
// snapshot.

// copyDirFiles snapshots every regular file in src into dst.
func copyDirFiles(src, dst string) error {
	entries, err := os.ReadDir(src)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if !e.Type().IsRegular() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			return err
		}
	}
	return nil
}

// crashAt returns an injector that snapshots dir into img and then fails
// with errBoom — the moment of the simulated kill.
func crashAt(dir, img string) func() error {
	return func() error {
		if err := copyDirFiles(dir, img); err != nil {
			return fmt.Errorf("crash snapshot: %w", err)
		}
		return errBoom
	}
}

// seedDurableDB opens a durable database in dir, loads one article and
// names it my_article — the pre-crash baseline every test starts from.
// Automatic checkpointing is disabled so tests control the checkpoint
// timing themselves.
func seedDurableDB(t *testing.T, dir string, opts ...Option) *Database {
	t.Helper()
	t.Cleanup(faultpoint.DisarmAll)
	dtd, err := os.ReadFile("testdata/article.dtd")
	if err != nil {
		t.Fatal(err)
	}
	opts = append([]Option{WithDataDir(dir), WithCheckpointEvery(-1)}, opts...)
	db, err := OpenDTD(string(dtd), opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	oid, err := db.LoadDocumentFile("testdata/article.sgml")
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Name("my_article", oid); err != nil {
		t.Fatal(err)
	}
	return db
}

// reopenDurable recovers a data directory as a fresh process would.
func reopenDurable(t *testing.T, dir string) *Database {
	t.Helper()
	dtd, err := os.ReadFile("testdata/article.dtd")
	if err != nil {
		t.Fatal(err)
	}
	db, err := OpenDTD(string(dtd), WithDataDir(dir), WithCheckpointEvery(-1))
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

// articleCount counts loaded articles through the reference query path.
func articleCount(t *testing.T, db *Database) int {
	t.Helper()
	return mustQuery(t, db, `select t from a in Articles, a PATH_p.title(t)`).Len()
}

// TestCrashCommitSeams kills the load commit path at every WAL seam and
// asserts the recovered state is exactly pre-load or post-load — and
// which one is determined by durability: before the record is written the
// batch must be lost, after the fsync it must survive.
func TestCrashCommitSeams(t *testing.T) {
	seams := []struct {
		site    string
		durable bool // the crash image holds the full record
	}{
		{"wal/append", false},
		{"wal/post-append", true}, // written in the image; real page-cache loss is the torn-tail test
		{"wal/post-fsync", true},
	}
	for _, seam := range seams {
		t.Run(seam.site, func(t *testing.T) {
			dir := t.TempDir()
			db := seedDurableDB(t, dir)
			src := articleSrc(t)
			epochPre := db.Epoch()
			countPre := articleCount(t, db)
			titlesPre := mustQuery(t, db, chaosQuery).Len()

			img := t.TempDir()
			disarm := faultpoint.Arm(seam.site, crashAt(dir, img))
			_, err := db.LoadDocuments([]string{src})
			disarm()
			if !errors.Is(err, errBoom) {
				t.Fatalf("load at %s: err = %v, want errBoom", seam.site, err)
			}
			// The live process rolled back and keeps serving the pre-load
			// state.
			if got := db.Epoch(); got != epochPre {
				t.Errorf("live epoch after failed load = %d, want %d", got, epochPre)
			}
			if got := articleCount(t, db); got != countPre {
				t.Errorf("live articles after failed load = %d, want %d", got, countPre)
			}

			// Recover the crash image as a fresh process.
			rdb := reopenDurable(t, img)
			epoch := rdb.Epoch()
			if epoch != epochPre && epoch != epochPre+1 {
				t.Fatalf("recovered epoch = %d, want %d (pre) or %d (post), never a hybrid", epoch, epochPre, epochPre+1)
			}
			wantPost := seam.durable
			if gotPost := epoch == epochPre+1; gotPost != wantPost {
				t.Errorf("recovered epoch = %d; batch durable = %v, want %v", epoch, gotPost, wantPost)
			}
			// Every loaded document is the same article, so the reference
			// count scales with the document count: 1 pre-crash document,
			// plus the batch if it was durable.
			wantDocs := 1
			if wantPost {
				wantDocs = 2
			}
			if got := len(rdb.Loader.Documents()); got != wantDocs {
				t.Errorf("recovered documents = %d, want %d", got, wantDocs)
			}
			if got := articleCount(t, rdb); got != countPre*wantDocs {
				t.Errorf("recovered articles = %d, want %d", got, countPre*wantDocs)
			}
			// The pinned reference query answers identically to the
			// pre-crash snapshot (the extra batch adds articles, not titles
			// under my_article).
			if got := mustQuery(t, rdb, chaosQuery).Len(); got != titlesPre {
				t.Errorf("recovered reference query = %d titles, want %d", got, titlesPre)
			}
		})
	}
}

// TestCrashTornTail cuts the recovered log at every byte offset inside
// its final record: recovery must silently truncate the torn record and
// serve the pre-batch state — the page-cache-loss counterpart of the
// post-append seam.
func TestCrashTornTail(t *testing.T) {
	dir := t.TempDir()
	db := seedDurableDB(t, dir)
	src := articleSrc(t)
	epochPre := db.Epoch()
	countPre := articleCount(t, db)
	logBefore, err := os.ReadFile(filepath.Join(dir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.LoadDocuments([]string{src}); err != nil {
		t.Fatal(err)
	}
	db.Close()
	logAfter, err := os.ReadFile(filepath.Join(dir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	if len(logAfter) <= len(logBefore) {
		t.Fatal("load appended nothing")
	}
	// Sample cut points across the appended record (every offset is
	// covered at the wal layer; here a spread proves the facade path).
	for cut := len(logBefore) + 1; cut < len(logAfter); cut += 7 {
		img := t.TempDir()
		if err := copyDirFiles(dir, img); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(img, "wal.log"), logAfter[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		rdb := reopenDurable(t, img)
		if got := rdb.Epoch(); got != epochPre {
			t.Fatalf("cut=%d: recovered epoch = %d, want %d (torn batch dropped)", cut, got, epochPre)
		}
		if got := articleCount(t, rdb); got != countPre {
			t.Fatalf("cut=%d: recovered articles = %d, want %d", cut, got, countPre)
		}
		rdb.Close()
	}
}

// TestCrashCheckpointSeams kills the checkpointer mid-write and
// pre-rename: either way the checkpoint must simply not exist yet, and
// recovery must reproduce the exact pre-crash state from the log (or the
// previous checkpoint). The leftover temp file must not confuse — or
// outlive — the next successful checkpoint.
func TestCrashCheckpointSeams(t *testing.T) {
	for _, site := range []string{"wal/checkpoint-write", "wal/checkpoint-rename"} {
		t.Run(site, func(t *testing.T) {
			dir := t.TempDir()
			db := seedDurableDB(t, dir)
			src := articleSrc(t)
			if _, err := db.LoadDocuments([]string{src, src}); err != nil {
				t.Fatal(err)
			}
			epochPre := db.Epoch()
			countPre := articleCount(t, db)

			img := t.TempDir()
			disarm := faultpoint.Arm(site, crashAt(dir, img))
			err := db.Checkpoint()
			disarm()
			if !errors.Is(err, errBoom) {
				t.Fatalf("checkpoint at %s: err = %v, want errBoom", site, err)
			}

			rdb := reopenDurable(t, img)
			if got := rdb.Epoch(); got != epochPre {
				t.Errorf("recovered epoch = %d, want %d", got, epochPre)
			}
			if got := articleCount(t, rdb); got != countPre {
				t.Errorf("recovered articles = %d, want %d", got, countPre)
			}
			mustQuery(t, rdb, chaosQuery)

			// The recovered database can checkpoint cleanly, and doing so
			// clears any leftover temp file from the crashed attempt.
			if err := rdb.Checkpoint(); err != nil {
				t.Fatalf("checkpoint after recovery: %v", err)
			}
			entries, err := os.ReadDir(img)
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range entries {
				if len(e.Name()) >= 14 && e.Name()[:14] == "checkpoint.tmp" {
					t.Errorf("stale checkpoint temp file survived: %s", e.Name())
				}
			}
		})
	}
}

// TestCrashCorruptLogSurfaces damages a non-tail record and asserts the
// facade refuses to open with ErrCorruptLog (via the public alias).
func TestCrashCorruptLogSurfaces(t *testing.T) {
	dir := t.TempDir()
	db := seedDurableDB(t, dir)
	if _, err := db.LoadDocuments([]string{articleSrc(t)}); err != nil {
		t.Fatal(err)
	}
	db.Close()
	path := filepath.Join(dir, "wal.log")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the first record's payload (13-byte magic + 8-byte
	// frame header, then payload) — well before the tail.
	data[13+8+2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	dtd, err := os.ReadFile("testdata/article.dtd")
	if err != nil {
		t.Fatal(err)
	}
	_, err = OpenDTD(string(dtd), WithDataDir(dir))
	if !errors.Is(err, ErrCorruptLog) {
		t.Fatalf("open on mid-log corruption: err = %v, want errors.Is(err, ErrCorruptLog)", err)
	}
}

// TestCrashReadersServeDuringWedgedDurableLoad parks a durable load at
// the post-append seam (record written, publish pending) and asserts
// concurrent readers keep answering from the published snapshot — the
// durability machinery lives entirely on the writer path.
func TestCrashReadersServeDuringWedgedDurableLoad(t *testing.T) {
	dir := t.TempDir()
	db := seedDurableDB(t, dir)
	src := articleSrc(t)
	epoch0 := db.Epoch()
	titles0 := mustQuery(t, db, chaosQuery).Len()

	entered := make(chan struct{})
	release := make(chan struct{})
	disarm := faultpoint.Arm("wal/post-append", faultpoint.Once(func() error {
		close(entered)
		<-release
		return errBoom
	}))
	defer disarm()

	loadErr := make(chan error, 1)
	go func() {
		_, err := db.LoadDocuments([]string{src})
		loadErr <- err
	}()
	<-entered // the writer is wedged mid-commit, record written
	for i := 0; i < 4; i++ {
		if got := mustQuery(t, db, chaosQuery).Len(); got != titles0 {
			t.Errorf("query %d during wedged load: %d titles, want %d", i, got, titles0)
		}
	}
	if got := db.Epoch(); got != epoch0 {
		t.Errorf("epoch during wedged load = %d, want %d", got, epoch0)
	}
	close(release)
	if err := <-loadErr; !errors.Is(err, errBoom) {
		t.Errorf("wedged load err = %v, want errBoom", err)
	}
	disarm()
	// The failed durable load rolled back everything, including the log:
	// the next load and a reopen both see a consistent history.
	if _, err := db.LoadDocuments([]string{src}); err != nil {
		t.Fatalf("load after wedge: %v", err)
	}
	epochEnd := db.Epoch()
	countEnd := articleCount(t, db)
	db.Close()
	rdb := reopenDurable(t, dir)
	if got := rdb.Epoch(); got != epochEnd {
		t.Errorf("recovered epoch = %d, want %d", got, epochEnd)
	}
	if got := articleCount(t, rdb); got != countEnd {
		t.Errorf("recovered articles = %d, want %d", got, countEnd)
	}
}

// TestCrashFailedLoadsDontGrowLayerDepth is the regression test for the
// eager-discard fix: repeated failed loads must not grow the published
// instance's copy-on-write depth, and the loader must sit on the
// published layer (not an abandoned staged one) after every failure.
func TestCrashFailedLoadsDontGrowLayerDepth(t *testing.T) {
	db := openChaosDB(t)
	src := articleSrc(t)
	published := db.Loader.Instance
	depth0 := published.Depth()
	defer faultpoint.Arm("dtdmap/set-root", faultpoint.Error(errBoom))()
	for i := 0; i < 20; i++ {
		if _, err := db.LoadDocuments([]string{src}); !errors.Is(err, errBoom) {
			t.Fatalf("load %d: err = %v, want errBoom", i, err)
		}
		if db.Loader.Instance != published {
			t.Fatalf("load %d: loader left on an abandoned staged layer", i)
		}
		if got := db.Loader.Instance.Depth(); got != depth0 {
			t.Fatalf("load %d: depth = %d, want %d (no growth across failed loads)", i, got, depth0)
		}
	}
	faultpoint.DisarmAll()
	if _, err := db.LoadDocuments([]string{src}); err != nil {
		t.Fatalf("load after disarm: %v", err)
	}
}
