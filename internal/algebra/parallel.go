package algebra

import (
	"sync"

	"sgmldb/internal/calculus"
)

// This file implements the parallel row scan shared by the row-at-a-time
// operators. An operator's per-row work (navigating a path predicate,
// evaluating a residual formula, unnesting a collection) is independent
// across rows, so the input can be partitioned into contiguous chunks and
// handed to a bounded worker pool. Each worker appends into its own
// output slot and the slots are concatenated in partition order, so the
// merged result is byte-for-byte the serial result — parallelism changes
// wall-clock time, never answers.

// minParallelRows is the smallest input for which spawning workers can
// pay for itself; smaller inputs run serially.
const minParallelRows = 4

// ctxStride bounds how many rows a scan processes between cancellation
// checks (the scan-partition granularity of query cancellation).
const ctxStride = 64

// mapRows applies fn to every input valuation and concatenates the
// results in input order, splitting the work across ctx.Workers
// goroutines when the input is large enough. fn must be safe for
// concurrent calls on distinct rows (all operator row functions are: they
// only read the environment and extend copy-on-write valuations).
func (ctx *Ctx) mapRows(in []calculus.Valuation, fn func(calculus.Valuation) ([]calculus.Valuation, error)) ([]calculus.Valuation, error) {
	workers := ctx.Workers
	if workers > len(in) {
		workers = len(in)
	}
	if workers <= 1 || len(in) < minParallelRows {
		return ctx.mapRowsSerial(in, fn)
	}
	outs := make([][]calculus.Valuation, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * len(in) / workers
		hi := (w + 1) * len(in) / workers
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			var out []calculus.Valuation
			for i := lo; i < hi; i++ {
				// Each row of a partition re-checks cancellation: a
				// cancelled query stops all partitions within one row.
				if err := ctx.err(); err != nil {
					errs[w] = err
					return
				}
				rows, err := fn(in[i])
				if err != nil {
					errs[w] = err
					return
				}
				out = append(out, rows...)
			}
			outs[w] = out
		}(w, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	var merged []calculus.Valuation
	for _, out := range outs {
		merged = append(merged, out...)
	}
	return merged, nil
}

func (ctx *Ctx) mapRowsSerial(in []calculus.Valuation, fn func(calculus.Valuation) ([]calculus.Valuation, error)) ([]calculus.Valuation, error) {
	var out []calculus.Valuation
	for i, v := range in {
		if i%ctxStride == 0 {
			if err := ctx.err(); err != nil {
				return nil, err
			}
		}
		rows, err := fn(v)
		if err != nil {
			return nil, err
		}
		out = append(out, rows...)
	}
	return out, nil
}
