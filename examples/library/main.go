// Library: the Section 5 running example (Knuth_Books) driven through the
// calculus API directly — the formal layer beneath O₂SQL. It builds the
// schema by hand (no SGML involved: the paper stresses the language is
// "useful for a variety of other OODB applications"), then runs the
// worked queries of Sections 5.2–5.3.
package main

import (
	"fmt"
	"log"

	"sgmldb/internal/calculus"
	"sgmldb/internal/object"
	"sgmldb/internal/store"
	"sgmldb/internal/text"
)

func main() {
	env := buildLibrary()

	// "In which attribute can 'Jo' be found?"
	q1 := &calculus.Query{
		Head: []calculus.VarDecl{{Name: "A", Sort: calculus.SortAttr}},
		Body: calculus.Exists{
			Vars: []calculus.VarDecl{
				{Name: "P", Sort: calculus.SortPath},
				{Name: "X", Sort: calculus.SortData},
			},
			Body: calculus.And{
				L: calculus.PathAtom{
					Base: calculus.NameRef{Name: "Knuth_Books"},
					Path: calculus.P(
						calculus.ElemVar{Name: "P"},
						calculus.ElemAttr{A: calculus.AttrVar{Name: "A"}},
						calculus.ElemBind{X: "X"},
					),
				},
				R: calculus.Eq{L: calculus.Var{Name: "X"}, R: calculus.Str("Jo")},
			},
		},
	}
	run(env, `{A | ∃P,X (<Knuth_Books P.A(X)> ∧ X = "Jo")}`, q1)

	// "Which paths lead to 'Jo'?"
	q2 := &calculus.Query{
		Head: []calculus.VarDecl{{Name: "P", Sort: calculus.SortPath}},
		Body: calculus.Exists{
			Vars: []calculus.VarDecl{{Name: "X", Sort: calculus.SortData}},
			Body: calculus.And{
				L: calculus.PathAtom{
					Base: calculus.NameRef{Name: "Knuth_Books"},
					Path: calculus.P(calculus.ElemVar{Name: "P"}, calculus.ElemBind{X: "X"}),
				},
				R: calculus.Eq{L: calculus.Var{Name: "X"}, R: calculus.Str("Jo")},
			},
		},
	}
	run(env, `{P | ∃X (<Knuth_Books P(X)> ∧ X = "Jo")}`, q2)

	// Attributes matching the pattern "(t|T)itle" by short paths.
	pat, err := text.PatternExpr("(t|T)itle")
	if err != nil {
		log.Fatal(err)
	}
	q3 := &calculus.Query{
		Head: []calculus.VarDecl{{Name: "X", Sort: calculus.SortData}},
		Body: calculus.Exists{
			Vars: []calculus.VarDecl{
				{Name: "P", Sort: calculus.SortPath},
				{Name: "A", Sort: calculus.SortAttr},
			},
			Body: calculus.Conj(
				calculus.PathAtom{
					Base: calculus.NameRef{Name: "Knuth_Books"},
					Path: calculus.P(
						calculus.ElemVar{Name: "P"},
						calculus.ElemAttr{A: calculus.AttrVar{Name: "A"}},
						calculus.ElemBind{X: "X"},
					),
				},
				calculus.Contains{
					T: calculus.FuncCall{Name: "name", Args: []calculus.Term{calculus.AttrVar{Name: "A"}}},
					E: pat,
				},
				calculus.Cmp{
					Op: calculus.Lt,
					L:  calculus.FuncCall{Name: "length", Args: []calculus.Term{calculus.PVar("P")}},
					R:  calculus.Num(3),
				},
			),
		},
	}
	run(env, `{X | ∃P,A (<Knuth_Books P.A(X)> ∧ name(A) contains "(t|T)itle" ∧ length(P) < 3)}`, q3)
}

func run(env *calculus.Env, label string, q *calculus.Query) {
	res, err := env.Eval(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(label)
	//lint:allow ctxpoll printing a finished result; evaluation is already complete
	for _, row := range res.Rows {
		for _, h := range q.Head {
			fmt.Printf("  %s = %s\n", h.Name, row[h.Name])
		}
	}
	fmt.Println()
}

func buildLibrary() *calculus.Env {
	s := store.NewSchema()
	must := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}
	must(s.AddClass("Chapter", object.TupleOf(
		object.TField{Name: "title", Type: object.StringType},
		object.TField{Name: "author", Type: object.StringType},
		object.TField{Name: "review", Type: object.SetOf(object.StringType)},
	)))
	must(s.AddClass("Volume", object.TupleOf(
		object.TField{Name: "title", Type: object.StringType},
		object.TField{Name: "chapters", Type: object.ListOf(object.Class("Chapter"))},
	)))
	must(s.AddClass("Book", object.TupleOf(
		object.TField{Name: "title", Type: object.StringType},
		object.TField{Name: "volumes", Type: object.ListOf(object.Class("Volume"))},
	)))
	must(s.AddRoot("Knuth_Books", object.Class("Book")))
	must(s.Check())
	in := store.NewInstance(s)
	obj := func(class string, v object.Value) object.OID {
		o, err := in.NewObject(class, v)
		if err != nil {
			log.Fatal(err)
		}
		return o
	}
	ch := func(title, author string, reviews ...string) object.OID {
		rv := make([]object.Value, len(reviews))
		for i, r := range reviews {
			rv[i] = object.String_(r)
		}
		return obj("Chapter", object.NewTuple(
			object.Field{Name: "title", Value: object.String_(title)},
			object.Field{Name: "author", Value: object.String_(author)},
			object.Field{Name: "review", Value: object.NewSet(rv...)},
		))
	}
	v1 := obj("Volume", object.NewTuple(
		object.Field{Name: "title", Value: object.String_("Fundamental Algorithms")},
		object.Field{Name: "chapters", Value: object.NewList(
			ch("Basic Concepts", "Knuth", "D. Scott"),
			ch("Information Structures", "Knuth"),
		)},
	))
	v2 := obj("Volume", object.NewTuple(
		object.Field{Name: "title", Value: object.String_("Seminumerical Algorithms")},
		object.Field{Name: "chapters", Value: object.NewList(
			ch("Random Numbers", "Jo", "D. Scott"),
			ch("Arithmetic", "Knuth"),
		)},
	))
	book := obj("Book", object.NewTuple(
		object.Field{Name: "title", Value: object.String_("The Art of Computer Programming")},
		object.Field{Name: "volumes", Value: object.NewList(v1, v2)},
	))
	if err := in.SetRoot("Knuth_Books", book); err != nil {
		log.Fatal(err)
	}
	return calculus.NewEnv(in)
}
