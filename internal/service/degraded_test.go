package service

import (
	"net/http"
	"os"
	"syscall"
	"testing"

	"sgmldb/internal/faultpoint"
)

// TestServiceDegraded drives the wire contract of a degraded primary: a
// storage fault poisons the WAL mid-load, after which writes return 503
// DEGRADED, /v1/health reports the state with its reason, queries keep
// answering from the last published epoch, and /v1/feed keeps shipping
// the durable prefix.
func TestServiceDegraded(t *testing.T) {
	t.Cleanup(faultpoint.DisarmAll)
	dtd, doc := readCorpus(t)
	db := openPrimary(t, dtd)
	if _, err := db.LoadDocuments([]string{doc}); err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, db, Config{})
	epochPre := db.Epoch()

	// Healthy baseline.
	if status, body := call(t, ts, "GET", "/v1/health", "", nil); status != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("baseline health = %d %v", status, body)
	}

	faultpoint.Arm("wal/append-sync-error", faultpoint.Once(faultpoint.Error(&os.PathError{Op: "sync", Path: "wal.log", Err: syscall.EIO})))
	status, body := call(t, ts, "POST", "/v1/load", "", map[string]any{"documents": []string{doc}})
	if status != http.StatusServiceUnavailable || errCode(t, body) != "DEGRADED" {
		t.Fatalf("load under failed fsync = %d %v, want 503 DEGRADED", status, body)
	}

	// Health: degraded, with the sticky reason; still 200 — the node
	// serves reads and only write probes should route around it.
	status, body = call(t, ts, "GET", "/v1/health", "", nil)
	if status != http.StatusOK || body["status"] != "degraded" {
		t.Fatalf("health on degraded node = %d %v, want 200 degraded", status, body)
	}
	if r, _ := body["degraded_reason"].(string); r == "" {
		t.Errorf("health carries no degraded_reason: %v", body)
	}

	// Reads keep serving the last published epoch.
	status, body = call(t, ts, "POST", "/v1/query", "", map[string]any{"query": "select t from a in Articles, a PATH_p.title(t)"})
	if status != http.StatusOK {
		t.Fatalf("query on degraded node = %d %v", status, body)
	}
	if got, _ := body["epoch"].(float64); uint64(got) != epochPre {
		t.Errorf("query epoch = %v, want %d", body["epoch"], epochPre)
	}

	// The feed keeps shipping the durable prefix to followers.
	feedStatus, _, feedBody := rawGet(t, ts, "/v1/feed?after=0")
	if feedStatus != http.StatusOK || len(decodeFeed(t, feedBody)) == 0 {
		t.Fatalf("feed on degraded node = %d with %d bytes, want the durable prefix", feedStatus, len(feedBody))
	}

	// Writes keep failing fast — the injector fired exactly once.
	if status, body = call(t, ts, "POST", "/v1/load", "", map[string]any{"documents": []string{doc}}); status != http.StatusServiceUnavailable || errCode(t, body) != "DEGRADED" {
		t.Fatalf("second load = %d %v, want fast 503 DEGRADED", status, body)
	}
}

// TestServiceHealthCheckpointFailures covers the satellite-2 surface: a
// failing checkpointer shows up in /v1/health with the streak and the
// last error while the node stays healthy for writes.
func TestServiceHealthCheckpointFailures(t *testing.T) {
	t.Cleanup(faultpoint.DisarmAll)
	dtd, doc := readCorpus(t)
	db := openPrimary(t, dtd)
	if _, err := db.LoadDocuments([]string{doc}); err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, db, Config{})

	faultpoint.Arm("wal/ckpt-write", faultpoint.Once(faultpoint.Error(&os.PathError{Op: "sync", Path: "checkpoint", Err: syscall.ENOSPC})))
	if err := db.Checkpoint(); err == nil {
		t.Fatal("armed checkpoint succeeded")
	}
	status, body := call(t, ts, "GET", "/v1/health", "", nil)
	if status != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("health = %d %v, want 200 ok (checkpoint failure is not degradation)", status, body)
	}
	if n, _ := body["checkpoint_failures"].(float64); n != 1 {
		t.Errorf("checkpoint_failures = %v, want 1", body["checkpoint_failures"])
	}
	if n, _ := body["checkpoint_fail_streak"].(float64); n != 1 {
		t.Errorf("checkpoint_fail_streak = %v, want 1", body["checkpoint_fail_streak"])
	}
	if msg, _ := body["last_checkpoint_error"].(string); msg == "" {
		t.Errorf("last_checkpoint_error missing: %v", body)
	}
	// A later success clears the streak but keeps the total.
	if err := db.Checkpoint(); err != nil {
		t.Fatalf("checkpoint after disarm: %v", err)
	}
	_, body = call(t, ts, "GET", "/v1/health", "", nil)
	if n, _ := body["checkpoint_fail_streak"].(float64); n != 0 {
		t.Errorf("streak after success = %v, want 0", body["checkpoint_fail_streak"])
	}
	if n, _ := body["checkpoint_failures"].(float64); n != 1 {
		t.Errorf("total after success = %v, want 1", body["checkpoint_failures"])
	}
}
