package calculus

import (
	"fmt"
	"strings"

	"sgmldb/internal/text"
)

// Formula is a first-order formula over the atoms of Section 5.2.
//
//sgmldbvet:closed
type Formula interface {
	isFormula()
	String() string
}

// Eq is the atom t = t′.
type Eq struct{ L, R DataTerm }

func (Eq) isFormula()       {}
func (f Eq) String() string { return f.L.String() + " = " + f.R.String() }

// In is the atom t ∈ t′.
type In struct{ L, R DataTerm }

func (In) isFormula()       {}
func (f In) String() string { return f.L.String() + " in " + f.R.String() }

// Subset is the atom t ⊆ t′.
type Subset struct{ L, R DataTerm }

func (Subset) isFormula()       {}
func (f Subset) String() string { return f.L.String() + " subset " + f.R.String() }

// PathAtom is the path predicate ⟨t P⟩: P is (an instance of) a concrete
// path from the root of t; variables on the path are range-restricted by
// it.
type PathAtom struct {
	Base DataTerm
	Path PathTerm
}

func (PathAtom) isFormula() {}
func (f PathAtom) String() string {
	return "<" + f.Base.String() + " " + f.Path.String() + ">"
}

// Contains is the interpreted predicate of Section 4.1: the text of t
// contains the pattern expression.
type Contains struct {
	T DataTerm
	E text.Expr
}

func (Contains) isFormula() {}
func (f Contains) String() string {
	return f.T.String() + " contains " + f.E.String()
}

// CmpOp is a comparison operator for the interpreted comparisons.
type CmpOp int

// Comparison operators.
const (
	Lt CmpOp = iota
	Le
	Gt
	Ge
	Ne
)

// String renders the operator.
func (op CmpOp) String() string {
	switch op {
	case Lt:
		return "<"
	case Le:
		return "<="
	case Gt:
		return ">"
	case Ge:
		return ">="
	case Ne:
		return "!="
	default:
		return "?"
	}
}

// Cmp is an interpreted comparison over integers, floats or strings, e.g.
// the J < K of the Letters query (†).
type Cmp struct {
	Op   CmpOp
	L, R DataTerm
}

func (Cmp) isFormula() {}
func (f Cmp) String() string {
	return f.L.String() + " " + f.Op.String() + " " + f.R.String()
}

// Pred is a user-registered interpreted predicate.
type Pred struct {
	Name string
	Args []Term
}

func (Pred) isFormula() {}
func (f Pred) String() string {
	parts := make([]string, len(f.Args))
	for i, a := range f.Args {
		parts[i] = a.String()
	}
	return f.Name + "(" + strings.Join(parts, ", ") + ")"
}

// And is conjunction; the evaluator reorders conjuncts to satisfy range
// restriction.
type And struct{ L, R Formula }

func (And) isFormula()       {}
func (f And) String() string { return "(" + f.L.String() + " ∧ " + f.R.String() + ")" }

// Or is disjunction.
type Or struct{ L, R Formula }

func (Or) isFormula()       {}
func (f Or) String() string { return "(" + f.L.String() + " ∨ " + f.R.String() + ")" }

// Not is negation; its free variables must be bound elsewhere (safe
// negation).
type Not struct{ F Formula }

func (Not) isFormula()       {}
func (f Not) String() string { return "¬" + f.F.String() }

// VarDecl declares a variable with its sort.
type VarDecl struct {
	Name string
	Sort Sort
}

// String renders the declaration.
func (v VarDecl) String() string { return v.Name }

// Exists is existential quantification over data, path and attribute
// variables.
type Exists struct {
	Vars []VarDecl
	Body Formula
}

func (Exists) isFormula() {}
func (f Exists) String() string {
	parts := make([]string, len(f.Vars))
	for i, v := range f.Vars {
		parts[i] = v.Name
	}
	return "∃" + strings.Join(parts, ",") + "(" + f.Body.String() + ")"
}

// Forall is universal quantification in the guarded form
// ∀x̄(Range → Then): Range range-restricts the quantified variables and
// Then is checked for every valuation of them.
type Forall struct {
	Vars  []VarDecl
	Range Formula
	Then  Formula
}

func (Forall) isFormula() {}
func (f Forall) String() string {
	parts := make([]string, len(f.Vars))
	for i, v := range f.Vars {
		parts[i] = v.Name
	}
	return "∀" + strings.Join(parts, ",") + "(" + f.Range.String() + " → " + f.Then.String() + ")"
}

// TrueF is the always-true formula (useful as a unit).
type TrueF struct{}

func (TrueF) isFormula()     {}
func (TrueF) String() string { return "true" }

// Query is {x₁, …, xₙ | φ}: the xᵢ are the only free variables of φ.
type Query struct {
	Head []VarDecl
	Body Formula
}

// String renders the query.
func (q *Query) String() string {
	parts := make([]string, len(q.Head))
	for i, v := range q.Head {
		parts[i] = v.Name
	}
	return "{" + strings.Join(parts, ", ") + " | " + q.Body.String() + "}"
}

// conjuncts flattens nested And into a list.
func conjuncts(f Formula) []Formula {
	if a, ok := f.(And); ok {
		return append(conjuncts(a.L), conjuncts(a.R)...)
	}
	return []Formula{f}
}

// Conj builds a right-nested conjunction of formulas (TrueF for none).
func Conj(fs ...Formula) Formula {
	var out Formula = TrueF{}
	for i := len(fs) - 1; i >= 0; i-- {
		if _, isTrue := out.(TrueF); isTrue {
			out = fs[i]
		} else {
			out = And{L: fs[i], R: out}
		}
	}
	return out
}

// freeVars collects the free variables of a formula with their sorts. A
// variable used with two different sorts is an error surfaced by
// CheckQuery.
func freeVars(f Formula, bound map[string]bool, into map[string]Sort) {
	switch x := f.(type) {
	case Eq:
		dataTermVars(x.L, bound, into)
		dataTermVars(x.R, bound, into)
	case In:
		dataTermVars(x.L, bound, into)
		dataTermVars(x.R, bound, into)
	case Subset:
		dataTermVars(x.L, bound, into)
		dataTermVars(x.R, bound, into)
	case Cmp:
		dataTermVars(x.L, bound, into)
		dataTermVars(x.R, bound, into)
	case Contains:
		dataTermVars(x.T, bound, into)
	case PathAtom:
		dataTermVars(x.Base, bound, into)
		pathTermVars(x.Path, bound, into)
	case Pred:
		for _, a := range x.Args {
			termVars(a, bound, into)
		}
	case And:
		freeVars(x.L, bound, into)
		freeVars(x.R, bound, into)
	case Or:
		freeVars(x.L, bound, into)
		freeVars(x.R, bound, into)
	case Not:
		freeVars(x.F, bound, into)
	case Exists:
		b2 := copyBound(bound)
		for _, v := range x.Vars {
			b2[v.Name] = true
		}
		freeVars(x.Body, b2, into)
	case Forall:
		b2 := copyBound(bound)
		for _, v := range x.Vars {
			b2[v.Name] = true
		}
		freeVars(x.Range, b2, into)
		freeVars(x.Then, b2, into)
	case TrueF:
	default:
		//lint:allow panic unreachable: the switch covers the closed Formula set (enforced by sgmldbvet exhaustive)
		panic(fmt.Sprintf("calculus: unknown formula %T", f))
	}
}

func copyBound(m map[string]bool) map[string]bool {
	out := make(map[string]bool, len(m))
	for k := range m {
		out[k] = true
	}
	return out
}

func termVars(t Term, bound map[string]bool, into map[string]Sort) {
	switch x := t.(type) {
	case DataTerm:
		dataTermVars(x, bound, into)
	case PathTerm:
		pathTermVars(x, bound, into)
	case AttrTerm:
		attrTermVars(x, bound, into)
	}
}

func dataTermVars(t DataTerm, bound map[string]bool, into map[string]Sort) {
	switch x := t.(type) {
	case Var:
		if !bound[x.Name] {
			into[x.Name] = SortData
		}
	case TupleTerm:
		for _, f := range x.Fields {
			attrTermVars(f.Attr, bound, into)
			dataTermVars(f.T, bound, into)
		}
	case ListTerm:
		for _, it := range x.Items {
			dataTermVars(it, bound, into)
		}
	case SetTerm:
		for _, it := range x.Items {
			dataTermVars(it, bound, into)
		}
	case FuncCall:
		for _, a := range x.Args {
			termVars(a, bound, into)
		}
	case PathApply:
		dataTermVars(x.Base, bound, into)
		pathTermVars(x.Path, bound, into)
	case InnerQuery:
		// The inner query's head variables are bound inside it; variables
		// free in its body but not in its head are correlated with the
		// outer query.
		b2 := copyBound(bound)
		for _, v := range x.Q.Head {
			b2[v.Name] = true
		}
		freeVars(x.Q.Body, b2, into)
	case Const, NameRef:
		// no variables
	}
}

func attrTermVars(t AttrTerm, bound map[string]bool, into map[string]Sort) {
	if v, ok := t.(AttrVar); ok && !bound[v.Name] {
		into[v.Name] = SortAttr
	}
}

func pathTermVars(t PathTerm, bound map[string]bool, into map[string]Sort) {
	for _, e := range t.Elems {
		switch x := e.(type) {
		case ElemVar:
			if !bound[x.Name] {
				into[x.Name] = SortPath
			}
		case ElemAttr:
			attrTermVars(x.A, bound, into)
		case ElemIndex:
			dataTermVars(x.I, bound, into)
		case ElemBind:
			if !bound[x.X] {
				into[x.X] = SortData
			}
		case ElemMember:
			dataTermVars(x.T, bound, into)
		case ElemDeref:
			// no variables
		}
	}
}

// FreeVars returns the free variables of the formula with their sorts.
func FreeVars(f Formula) map[string]Sort {
	out := map[string]Sort{}
	freeVars(f, map[string]bool{}, out)
	return out
}
