// Letters: Section 4.4 of the paper — ordered tuples viewed as
// heterogeneous lists. The SGML "&" connector lets the sender and
// recipient appear in either order; the mapping produces a marked union
// of the two permutations, and query Q6 selects letters by the positions
// of the markers.
package main

import (
	"fmt"
	"log"

	"sgmldb"
	"sgmldb/internal/object"
)

const lettersDTD = `<!DOCTYPE letter [
<!ELEMENT letter - - (preamble, content)>
<!ELEMENT preamble - O (to & from)>
<!ELEMENT to - O (#PCDATA)>
<!ELEMENT from - O (#PCDATA)>
<!ELEMENT content - O (#PCDATA)>
]>`

var letters = []string{
	`<letter><preamble><to>Alice<from>Bob</preamble><content>Dear Alice, the recipient comes first here.</letter>`,
	`<letter><preamble><from>Carol<to>Dan</preamble><content>Dear Dan, the sender comes first here.</letter>`,
	`<letter><preamble><to>Erin<from>Frank</preamble><content>Dear Erin, recipient first again.</letter>`,
}

func main() {
	db, err := sgmldb.OpenDTD(lettersDTD)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== the (to & from) connector maps to a union of permutations ===")
	fmt.Println(db.SchemaString())
	for _, src := range letters {
		if _, err := db.LoadDocument(src); err != nil {
			log.Fatal(err)
		}
	}

	// Q6: letters where the sender precedes the recipient in the
	// preamble. The preamble tuple is read as a heterogeneous list; i and
	// j range over the positions of the from/to markers.
	q6 := `
select letter
from letter in Letters, from(i) in letter.preamble, to(j) in letter.preamble
where i < j`
	res, err := db.Query(q6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== Q6: sender precedes recipient ===")
	for _, l := range res.(*object.Set).Elems() {
		fmt.Printf("  %s\n", db.Text(l))
	}

	// The implicit selectors of Section 4.2: .to projects through either
	// permutation marker.
	recipients, err := db.Query(`select t from l in Letters, l.preamble(p), p.to(t)`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n=== all recipients (markers omitted) ===")
	for _, r := range recipients.(*object.Set).Elems() {
		fmt.Printf("  %s\n", db.Text(r))
	}
}
