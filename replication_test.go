package sgmldb_test

// Replication chaos suite (make chaos runs it under -race): kill the
// primary's commit path at every WAL seam while a live follower tails,
// cut the feed stream mid-frame, and fail the follower's apply loop —
// in every case the follower must converge to exactly the primary's
// state, never observing a rolled-back record and never re-applying or
// skipping one. This file is an external test package (sgmldb_test)
// because it imports internal/service, which itself imports sgmldb.

import (
	"context"
	"errors"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"sgmldb"
	"sgmldb/internal/faultpoint"
	"sgmldb/internal/object"
	"sgmldb/internal/service"
)

var errReplBoom = errors.New("boom (injected)")

func replCorpus(t testing.TB) (dtd, doc string) {
	t.Helper()
	d, err := os.ReadFile("testdata/article.dtd")
	if err != nil {
		t.Fatal(err)
	}
	a, err := os.ReadFile("testdata/article.sgml")
	if err != nil {
		t.Fatal(err)
	}
	return string(d), string(a)
}

// replPrimary opens a durable primary (manual checkpoints only) and
// serves it over an open-mode httptest server.
func replPrimary(t *testing.T, dtd string) (*sgmldb.Database, *httptest.Server) {
	t.Helper()
	t.Cleanup(faultpoint.DisarmAll)
	db, err := sgmldb.OpenDTD(dtd, sgmldb.WithDataDir(t.TempDir()), sgmldb.WithCheckpointEvery(-1))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	srv, err := service.New(db, service.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return db, ts
}

// replFollower opens a follower database and tails the primary until the
// test ends (or stop is called).
func replFollower(t *testing.T, dtd, primaryURL string) (*sgmldb.Database, func()) {
	t.Helper()
	fdb, err := sgmldb.OpenFollower(dtd)
	if err != nil {
		t.Fatal(err)
	}
	fl := &service.Follower{DB: fdb, Primary: primaryURL, WaitMS: 200, MinBackoff: 2 * time.Millisecond}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- fl.Run(ctx) }()
	stopped := false
	stop := func() {
		if stopped {
			return
		}
		stopped = true
		cancel()
		if err := <-done; !errors.Is(err, context.Canceled) {
			t.Errorf("follower loop: %v", err)
		}
	}
	t.Cleanup(stop)
	return fdb, stop
}

func replWait(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// replArticleCount counts the Articles extent on a database.
func replArticleCount(t *testing.T, db *sgmldb.Database) int {
	t.Helper()
	v, err := db.Query(`select a from a in Articles`)
	if err != nil {
		t.Fatalf("Articles query: %v", err)
	}
	s, ok := v.(*object.Set)
	if !ok {
		t.Fatalf("Articles query = %T, want set", v)
	}
	return s.Len()
}

// replFeedSeq is the primary's last committed log sequence.
func replFeedSeq(t *testing.T, p *sgmldb.Database) uint64 {
	t.Helper()
	seq, err := p.FeedSeq()
	if err != nil {
		t.Fatalf("FeedSeq: %v", err)
	}
	return seq
}

// caughtUp is the convergence predicate: the follower applied everything
// the primary committed.
func caughtUp(p, f *sgmldb.Database) func() bool {
	return func() bool {
		seq, err := p.FeedSeq()
		return err == nil && f.AppliedSeq() == seq
	}
}

// TestChaosReplicationPrimaryCommitSeams kills the primary's commit path
// at every WAL seam (before the frame write, after it, after the fsync)
// while a live follower long-polls the feed. The failed batch rolls back
// on the primary and must be invisible to the follower: no record ships,
// the epochs stay equal, and the next successful commit converges both
// sides. A rolled-back record reaching the follower would desync their
// deterministic replay forever — this is the wire analog of the local
// crash suite.
func TestChaosReplicationPrimaryCommitSeams(t *testing.T) {
	dtd, doc := replCorpus(t)
	primary, ts := replPrimary(t, dtd)
	if _, err := primary.LoadDocuments([]string{doc}); err != nil {
		t.Fatal(err)
	}
	fdb, _ := replFollower(t, dtd, ts.URL)
	replWait(t, "initial catch-up", caughtUp(primary, fdb))

	for _, seam := range []string{"wal/append", "wal/post-append", "wal/post-fsync"} {
		t.Run(seam, func(t *testing.T) {
			count0 := replArticleCount(t, fdb)
			epoch0 := primary.Epoch()
			seq0 := replFeedSeq(t, primary)

			disarm := faultpoint.Arm(seam, faultpoint.Once(faultpoint.Error(errReplBoom)))
			_, err := primary.LoadDocuments([]string{doc})
			disarm()
			if !errors.Is(err, errReplBoom) {
				t.Fatalf("load with %s armed: err = %v, want errReplBoom", seam, err)
			}
			if got := primary.Epoch(); got != epoch0 {
				t.Fatalf("primary epoch after failed load = %d, want %d (rollback)", got, epoch0)
			}
			if got := replFeedSeq(t, primary); got != seq0 {
				t.Fatalf("primary feed seq after failed load = %d, want %d (nothing committed)", got, seq0)
			}

			// The follower keeps serving the pre-failure state mid-stream.
			if got := replArticleCount(t, fdb); got != count0 {
				t.Fatalf("follower saw a rolled-back record: %d articles, want %d", got, count0)
			}

			// The next successful commit converges both sides.
			if _, err := primary.LoadDocuments([]string{doc}); err != nil {
				t.Fatalf("load after disarm: %v", err)
			}
			replWait(t, "post-seam convergence", caughtUp(primary, fdb))
			if fdb.Epoch() != primary.Epoch() {
				t.Fatalf("epochs diverged after %s: follower %d, primary %d", seam, fdb.Epoch(), primary.Epoch())
			}
			if got := replArticleCount(t, fdb); got != count0+1 {
				t.Fatalf("follower articles after recovery = %d, want %d", got, count0+1)
			}
		})
	}

	// Root namings ship too: the follower resolves a name bound after it
	// connected.
	oids, err := primary.LoadDocuments([]string{doc})
	if err != nil {
		t.Fatal(err)
	}
	if err := primary.Name("chaos_doc", oids[0]); err != nil {
		t.Fatal(err)
	}
	replWait(t, "name record", caughtUp(primary, fdb))
	v, err := fdb.Query(`select t from chaos_doc PATH_p.title(t)`)
	if err != nil {
		t.Fatalf("follower query over shipped name: %v", err)
	}
	if s, ok := v.(*object.Set); !ok || s.Len() == 0 {
		t.Fatalf("follower query over shipped name = %v, want non-empty set", v)
	}
}

// TestChaosReplicationStreamCutResumes cuts the very first feed response
// in half mid-frame (the wire signature of a primary killed mid-send)
// and asserts the follower treats it like a torn tail: apply the intact
// prefix, re-anchor at the last applied record, refetch the rest — and
// end up with exactly the primary's state, nothing doubled or dropped.
func TestChaosReplicationStreamCutResumes(t *testing.T) {
	dtd, doc := replCorpus(t)
	primary, ts := replPrimary(t, dtd)
	for i := 0; i < 3; i++ {
		if _, err := primary.LoadDocuments([]string{doc}); err != nil {
			t.Fatal(err)
		}
	}
	// Armed before the follower's first poll: that response carries the
	// whole history and arrives truncated.
	defer faultpoint.Arm("service/feed-stream", faultpoint.Once(faultpoint.Error(errReplBoom)))()
	fdb, _ := replFollower(t, dtd, ts.URL)
	replWait(t, "convergence across the cut stream", caughtUp(primary, fdb))
	if fdb.Epoch() != primary.Epoch() {
		t.Fatalf("epochs diverged: follower %d, primary %d", fdb.Epoch(), primary.Epoch())
	}
	if got := replArticleCount(t, fdb); got != 3 {
		t.Fatalf("follower articles = %d, want 3 (no record doubled or dropped)", got)
	}
}

// TestChaosReplicationApplyFaultResumes fails the follower's apply loop
// partway through a shipped batch. The loop must keep what applied,
// re-anchor at its last applied record, and resume — the strict
// seq == applied+1 check in ApplyRecord turns any re-apply or skip into
// a hard error, so convergence here proves exactly-once application.
func TestChaosReplicationApplyFaultResumes(t *testing.T) {
	dtd, doc := replCorpus(t)
	primary, ts := replPrimary(t, dtd)
	for i := 0; i < 3; i++ {
		if _, err := primary.LoadDocuments([]string{doc}); err != nil {
			t.Fatal(err)
		}
	}
	// First record applies, the second apply dies once, the rest proceed.
	defer faultpoint.Arm("service/follower-apply",
		faultpoint.After(1, faultpoint.Once(faultpoint.Error(errReplBoom))))()
	fdb, _ := replFollower(t, dtd, ts.URL)
	replWait(t, "convergence across the apply fault", caughtUp(primary, fdb))
	if fdb.Epoch() != primary.Epoch() {
		t.Fatalf("epochs diverged: follower %d, primary %d", fdb.Epoch(), primary.Epoch())
	}
	if got := replArticleCount(t, fdb); got != 3 {
		t.Fatalf("follower articles = %d, want 3", got)
	}
}

// TestChaosReplicationFollowerReadOnly: the follower's write surface is
// closed — the primary's log is the only mutation source, so local loads
// and namings fail with ErrReadOnly even while the tail loop is live.
func TestChaosReplicationFollowerReadOnly(t *testing.T) {
	dtd, doc := replCorpus(t)
	primary, ts := replPrimary(t, dtd)
	if _, err := primary.LoadDocuments([]string{doc}); err != nil {
		t.Fatal(err)
	}
	fdb, _ := replFollower(t, dtd, ts.URL)
	replWait(t, "catch-up", caughtUp(primary, fdb))

	if _, err := fdb.LoadDocuments([]string{doc}); !errors.Is(err, sgmldb.ErrReadOnly) {
		t.Errorf("follower LoadDocuments: err = %v, want errors.Is ErrReadOnly", err)
	}
	if err := fdb.Name("nope", 1); !errors.Is(err, sgmldb.ErrReadOnly) {
		t.Errorf("follower Name: err = %v, want errors.Is ErrReadOnly", err)
	}
	// Reads stay open while writes are refused.
	if got := replArticleCount(t, fdb); got != 1 {
		t.Errorf("follower articles = %d, want 1", got)
	}
}
