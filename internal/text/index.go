package text

import (
	"sort"
	"sync"

	"sgmldb/internal/faultpoint"
)

// Fault-injection sites on the index-rebuild path the facade runs after
// staging a load. Clone and Add return no error, so an injected failure
// escalates to a panic — deliberately: these sites exist to prove that a
// panic between "documents staged" and "snapshot published" is contained
// at the facade boundary and rolled back, not that an error is politely
// forwarded.
var (
	fpClone = faultpoint.New("text/index-clone")
	fpAdd   = faultpoint.New("text/index-add")
)

// DocID identifies an indexed document (the caller typically uses object
// identifiers).
type DocID uint64

// posting is the occurrence list of one word in one document.
type posting struct {
	doc       DocID
	positions []int // word positions, ascending
}

// Index is a positional inverted index: the full-text indexing mechanism
// whose integration Section 4.1 and Section 6 call for. It answers
// contains expressions (boolean combinations of patterns) and near
// predicates without scanning document text.
//
// An Index is safe for concurrent use: Add takes the write lock, every
// reader (Lookup, Eval, Docs, …) the read lock, so any number of queries
// can evaluate contains expressions while one loader indexes documents.
// Clone additionally supports the facade's copy-on-write discipline: a
// writer clones the published index, Adds into the clone (posting lists
// are copied lazily, the first time a clone touches a word), and
// publishes the clone, so queries pinned to the old index never observe a
// half-applied batch.
type Index struct {
	mu    sync.RWMutex
	vocab map[string][]posting // word -> postings, one posting per doc
	docs  map[DocID]bool
	order []DocID // insertion order
	// docWords records the distinct words of each indexed document so that
	// re-Adding a document can first retract its old postings.
	docWords map[DocID][]string
	// cow marks an index whose posting slices may be shared with a clone
	// (set on both sides of Clone). A cow index copies a word's posting
	// slice the first time it modifies it; owned tracks which words this
	// index has already copied.
	cow   bool
	owned map[string]bool
	// sortMu guards the lazily built sortedWords cache, which readers
	// (holding only mu.RLock) may need to build. Lock order: mu before
	// sortMu.
	sortMu sync.Mutex
	// sortedWords caches the vocabulary for pattern scans; invalidated on
	// Add.
	sortedWords []string
}

// NewIndex returns an empty index.
func NewIndex() *Index {
	return &Index{
		vocab:    make(map[string][]posting),
		docs:     make(map[DocID]bool),
		docWords: make(map[DocID][]string),
	}
}

// Clone returns an independently mutable copy of the index. The copy is
// cheap — posting slices are shared until either side modifies a word —
// which is what makes per-load index versions affordable: the writer
// clones, Adds the new documents, and atomically publishes the clone,
// while readers pinned to the original keep a stable view.
func (ix *Index) Clone() *Index {
	if err := fpClone.Hit(); err != nil {
		//lint:allow panic injected faults escalate to panics here (no error return); contained at the facade boundary
		panic(err)
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	c := &Index{
		vocab:    make(map[string][]posting, len(ix.vocab)),
		docs:     make(map[DocID]bool, len(ix.docs)),
		order:    append([]DocID(nil), ix.order...),
		docWords: make(map[DocID][]string, len(ix.docWords)),
		cow:      true,
		owned:    make(map[string]bool),
	}
	for w, ps := range ix.vocab {
		c.vocab[w] = ps
	}
	for d := range ix.docs {
		c.docs[d] = true
	}
	for d, ws := range ix.docWords {
		c.docWords[d] = ws
	}
	// The receiver's slices are now shared too: everything it owned it no
	// longer owns exclusively, and future Adds must copy before writing.
	ix.cow = true
	ix.owned = make(map[string]bool)
	return c
}

// Add indexes the text of one document. Re-Adding a document replaces its
// postings wholesale: the old positions are retracted first, so positions
// stay ascending and phrase/near evaluation (which binary-searches
// position lists) stays correct across re-indexing.
func (ix *Index) Add(doc DocID, text string) {
	if err := fpAdd.Hit(); err != nil {
		//lint:allow panic injected faults escalate to panics here (no error return); contained at the facade boundary
		panic(err)
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ix.docs[doc] {
		ix.retract(doc)
	} else {
		ix.docs[doc] = true
		ix.order = append(ix.order, doc)
	}
	ix.sortMu.Lock()
	ix.sortedWords = nil
	ix.sortMu.Unlock()
	var words []string
	for _, t := range Tokenize(text) {
		ps := ix.ownPostings(t.Word)
		if n := len(ps); n > 0 && ps[n-1].doc == doc {
			ps[n-1].positions = append(ps[n-1].positions, t.Pos)
		} else {
			words = append(words, t.Word)
			ps = append(ps, posting{doc: doc, positions: []int{t.Pos}})
		}
		ix.vocab[t.Word] = ps
	}
	ix.docWords[doc] = words
}

// retract removes a document's postings ahead of re-indexing. The caller
// holds ix.mu and re-Adds the document immediately, so docs and order are
// left alone.
func (ix *Index) retract(doc DocID) {
	for _, w := range ix.docWords[doc] {
		ps := ix.vocab[w]
		at := -1
		for i, p := range ps {
			if p.doc == doc {
				at = i
				break
			}
		}
		if at < 0 {
			continue
		}
		if ix.cow && !ix.owned[w] {
			cp := make([]posting, 0, len(ps)-1)
			cp = append(cp, ps[:at]...)
			cp = append(cp, ps[at+1:]...)
			ps = cp
			ix.owned[w] = true
		} else {
			ps = append(ps[:at], ps[at+1:]...)
		}
		if len(ps) == 0 {
			delete(ix.vocab, w)
		} else {
			ix.vocab[w] = ps
		}
	}
	delete(ix.docWords, doc)
}

// ownPostings returns the word's posting slice, first copying it if it
// may be shared with a clone. Every posting this Add call appends is
// fresh (retract removed the document's old entry), so owning the slice
// itself is enough — older postings' position lists are never written.
func (ix *Index) ownPostings(w string) []posting {
	ps := ix.vocab[w]
	if ix.cow && !ix.owned[w] {
		cp := make([]posting, len(ps))
		copy(cp, ps)
		ps = cp
		ix.owned[w] = true
	}
	return ps
}

// Size reports the number of indexed documents.
func (ix *Index) Size() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.docs)
}

// VocabularySize reports the number of distinct words.
func (ix *Index) VocabularySize() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.vocab)
}

// Docs returns all indexed documents in insertion order.
func (ix *Index) Docs() []DocID {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	out := make([]DocID, len(ix.order))
	copy(out, ix.order)
	return out
}

// Lookup returns the documents containing the word, ascending.
func (ix *Index) Lookup(word string) []DocID {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	ps := ix.vocab[word]
	out := make([]DocID, len(ps))
	for i, p := range ps {
		out[i] = p.doc
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// matchingWords scans the vocabulary with a pattern. Bare literals skip
// the scan. Callers hold at least ix.mu.RLock.
func (ix *Index) matchingWords(p *Pattern) []string {
	if lit, ok := p.Literal(); ok {
		if _, present := ix.vocab[lit]; present {
			return []string{lit}
		}
		return nil
	}
	var out []string
	for _, w := range ix.sorted() {
		if p.Match(w) {
			out = append(out, w)
		}
	}
	return out
}

// sorted returns the sorted vocabulary, (re)building the cache under its
// own mutex so that concurrent readers — who hold only mu.RLock — do not
// race on the cache. Add invalidates it under mu.Lock, which excludes all
// readers, so the cache a reader builds here is consistent with the
// vocabulary it scans.
func (ix *Index) sorted() []string {
	ix.sortMu.Lock()
	defer ix.sortMu.Unlock()
	if ix.sortedWords == nil {
		ix.sortedWords = make([]string, 0, len(ix.vocab))
		for w := range ix.vocab {
			ix.sortedWords = append(ix.sortedWords, w)
		}
		sort.Strings(ix.sortedWords)
	}
	return ix.sortedWords
}

// Eval answers a contains expression from the index: the set of documents
// whose text satisfies expr, ascending by DocID.
//
// Pattern atoms are evaluated at word granularity (a pattern matches a
// document if it matches one of the document's words), which is the IRS
// convention the index supports; multi-word literal atoms are evaluated as
// a phrase using positions. Negation complements against the set of all
// indexed documents.
func (ix *Index) Eval(expr Expr) []DocID {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	set := ix.eval(expr)
	out := make([]DocID, 0, len(set))
	for d := range set {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (ix *Index) eval(expr Expr) map[DocID]bool {
	switch e := expr.(type) {
	case MatchExpr:
		if lit, ok := e.Pattern.Literal(); ok {
			words := Words(lit)
			if len(words) > 1 {
				return ix.phrase(words)
			}
			if len(words) == 1 {
				return ix.docsWith(words[0])
			}
			return map[DocID]bool{}
		}
		out := map[DocID]bool{}
		for _, w := range ix.matchingWords(e.Pattern) {
			for d := range ix.docsWith(w) {
				out[d] = true
			}
		}
		return out
	case AndExpr:
		l := ix.eval(e.L)
		r := ix.eval(e.R)
		out := map[DocID]bool{}
		for d := range l {
			if r[d] {
				out[d] = true
			}
		}
		return out
	case OrExpr:
		out := ix.eval(e.L)
		for d := range ix.eval(e.R) {
			out[d] = true
		}
		return out
	case NotExpr:
		inner := ix.eval(e.E)
		out := map[DocID]bool{}
		for d := range ix.docs {
			if !inner[d] {
				out[d] = true
			}
		}
		return out
	case NearExpr:
		return ix.near(e)
	default:
		return map[DocID]bool{}
	}
}

func (ix *Index) docsWith(word string) map[DocID]bool {
	out := map[DocID]bool{}
	for _, p := range ix.vocab[word] {
		out[p.doc] = true
	}
	return out
}

// phrase finds documents containing the words consecutively.
func (ix *Index) phrase(words []string) map[DocID]bool {
	out := map[DocID]bool{}
	if len(words) == 0 {
		return out
	}
	first := ix.vocab[words[0]]
	for _, p := range first {
		for _, pos := range p.positions {
			ok := true
			for k := 1; k < len(words); k++ {
				if !ix.hasAt(words[k], p.doc, pos+k) {
					ok = false
					break
				}
			}
			if ok {
				out[p.doc] = true
				break
			}
		}
	}
	return out
}

func (ix *Index) hasAt(word string, doc DocID, pos int) bool {
	for _, p := range ix.vocab[word] {
		if p.doc != doc {
			continue
		}
		i := sort.SearchInts(p.positions, pos)
		return i < len(p.positions) && p.positions[i] == pos
	}
	return false
}

// near answers a word-distance predicate from positions. Either operand
// may be a multi-word phrase: its occurrences are the start positions at
// which the words appear consecutively, and the distance is the word gap
// between the end of one occurrence and the start of the other.
func (ix *Index) near(e NearExpr) map[DocID]bool {
	out := map[DocID]bool{}
	aw, bw := Words(e.A), Words(e.B)
	if len(aw) == 0 || len(bw) == 0 {
		return out
	}
	a := ix.occurrencesOf(aw)
	b := ix.occurrencesOf(bw)
	for doc, aPos := range a {
		bPos, ok := b[doc]
		if !ok {
			continue
		}
		if nearSpans(aPos, bPos, len(aw), len(bw), e.Dist) {
			out[doc] = true
		}
	}
	return out
}

// occurrencesOf maps each document to the ascending start positions at
// which the words occur consecutively. A single word reduces to its
// position list; a phrase is resolved like phrase(), but keeps every
// start rather than just existence.
func (ix *Index) occurrencesOf(words []string) map[DocID][]int {
	out := map[DocID][]int{}
	for _, p := range ix.vocab[words[0]] {
		for _, pos := range p.positions {
			full := true
			for k := 1; k < len(words); k++ {
				if !ix.hasAt(words[k], p.doc, pos+k) {
					full = false
					break
				}
			}
			if full {
				out[p.doc] = append(out[p.doc], pos)
			}
		}
	}
	return out
}

// nearSpans reports whether some a-occurrence (la words long) and some
// b-occurrence (lb words long) are separated by at most dist intervening
// words. Overlapping occurrences do not match, which for single words
// coincides with NearExpr.Eval's |pa−pb|−1 ≤ dist, pa ≠ pb.
func nearSpans(as, bs []int, la, lb, dist int) bool {
	for _, sa := range as {
		for _, sb := range bs {
			var gap int
			if sa < sb {
				gap = sb - (sa + la)
			} else {
				gap = sa - (sb + lb)
			}
			if gap >= 0 && gap <= dist {
				return true
			}
		}
	}
	return false
}
