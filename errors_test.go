package sgmldb

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"sgmldb/internal/object"
)

// The facade promises sentinel errors testable with errors.Is, no matter
// how many wrapping layers the failing operation adds.

func TestErrReadOnlyFromSnapshot(t *testing.T) {
	db := openArticleDB(t)
	src, err := os.ReadFile("testdata/article.sgml")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.LoadDocument(string(src)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "db.snap")
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	snap, err := OpenSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	_, err = snap.LoadDocument(string(src))
	if !errors.Is(err, ErrReadOnly) {
		t.Errorf("LoadDocument on snapshot: err = %v, want errors.Is ErrReadOnly", err)
	}
}

func TestErrUnknownObjectFromName(t *testing.T) {
	db := openArticleDB(t)
	err := db.Name("ghost", object.OID(1<<40))
	if !errors.Is(err, ErrUnknownObject) {
		t.Errorf("Name with bogus oid: err = %v, want errors.Is ErrUnknownObject", err)
	}
}

func TestErrNoMappingFromExport(t *testing.T) {
	db := openArticleDB(t)
	src, err := os.ReadFile("testdata/article.sgml")
	if err != nil {
		t.Fatal(err)
	}
	oid, err := db.LoadDocument(string(src))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "db.snap")
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	snap, err := OpenSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	_, err = snap.Export(oid)
	if !errors.Is(err, ErrNoMapping) {
		t.Errorf("Export without mapping: err = %v, want errors.Is ErrNoMapping", err)
	}
}
