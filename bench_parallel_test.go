package sgmldb

// BenchmarkQueryParallel quantifies the concurrency tentpole on two axes:
//
//   - Serial vs Workers=N: intra-query parallelism — one query's outer
//     scan partitioned across the worker pool;
//   - Concurrent: inter-query parallelism — b.RunParallel issuing
//     independent queries against one engine (shared plan cache, shared
//     index, lock-free instance reads).
//
// Both must beat Serial when GOMAXPROCS > 1. Run with:
//
//	go test -bench=QueryParallel -cpu=1,4,8
import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"sgmldb/internal/object"
)

func BenchmarkQueryParallel(b *testing.B) {
	const q = `select t from a in Articles, a PATH_p.title(t)`
	db := articlesDB(b, 12)
	check := func(b *testing.B, v object.Value, err error) {
		b.Helper()
		if err != nil {
			b.Fatal(err)
		}
		if v.(*object.Set).Len() == 0 {
			b.Fatal("empty result")
		}
	}
	b.Run("Serial", func(b *testing.B) {
		e := engineFor(db, true, true)
		e.Workers = 1
		v, err := e.Query(q) // warm the plan cache
		check(b, v, err)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			v, err := e.Query(q)
			check(b, v, err)
		}
	})
	b.Run(fmt.Sprintf("Workers=%d", runtime.GOMAXPROCS(0)), func(b *testing.B) {
		e := engineFor(db, true, true)
		e.Workers = 0 // GOMAXPROCS
		v, err := e.Query(q)
		check(b, v, err)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			v, err := e.Query(q)
			check(b, v, err)
		}
	})
	b.Run("Concurrent", func(b *testing.B) {
		e := engineFor(db, true, true)
		e.Workers = 1 // isolate inter-query scaling
		p, err := e.Prepare(q)
		if err != nil {
			b.Fatal(err)
		}
		ctx := context.Background()
		v, verr := p.Run(ctx)
		check(b, v, verr)
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				v, err := p.Run(ctx)
				check(b, v, err)
			}
		})
	})
}
