package object

import (
	"fmt"
	"sort"
)

// Hierarchy is a class hierarchy (C, σ, ≺): a finite set of class names C,
// a mapping σ from class names to their declared types, and a partial order
// ≺ on C (the inheritance order, declared via immediate-superclass edges).
//
// A Hierarchy is mutable while a schema is being built (classes and
// inheritance edges are added) and is then checked for well-formedness:
// ≺ must be acyclic and for every c ≺ c' we must have σ(c) ≤ σ(c').
type Hierarchy struct {
	classes map[string]Type     // σ
	parents map[string][]string // immediate superclasses, c -> c′ with c ≺ c′
	order   []string            // declaration order, for deterministic output
}

// NewHierarchy returns an empty class hierarchy.
func NewHierarchy() *Hierarchy {
	return &Hierarchy{
		classes: make(map[string]Type),
		parents: make(map[string][]string),
	}
}

// AddClass declares class name with type σ(name)=typ. Redeclaring a class
// is an error.
func (h *Hierarchy) AddClass(name string, typ Type) error {
	if name == "" {
		return fmt.Errorf("object: empty class name")
	}
	if _, ok := h.classes[name]; ok {
		return fmt.Errorf("object: class %q already declared", name)
	}
	if typ == nil {
		typ = TupleOf()
	}
	h.classes[name] = typ
	h.order = append(h.order, name)
	return nil
}

// SetType replaces σ(name). It is used while compiling mutually recursive
// DTDs, where class types are filled in after all names are declared.
func (h *Hierarchy) SetType(name string, typ Type) error {
	if _, ok := h.classes[name]; !ok {
		return fmt.Errorf("object: class %q not declared", name)
	}
	h.classes[name] = typ
	return nil
}

// AddInherits records c ≺ sup (c inherits from sup). Both classes must be
// declared.
func (h *Hierarchy) AddInherits(c, sup string) error {
	if _, ok := h.classes[c]; !ok {
		return fmt.Errorf("object: class %q not declared", c)
	}
	if _, ok := h.classes[sup]; !ok {
		return fmt.Errorf("object: superclass %q not declared", sup)
	}
	for _, p := range h.parents[c] {
		if p == sup {
			return nil
		}
	}
	h.parents[c] = append(h.parents[c], sup)
	return nil
}

// Has reports whether the class is declared.
func (h *Hierarchy) Has(name string) bool {
	_, ok := h.classes[name]
	return ok
}

// TypeOf returns σ(name) and whether the class is declared.
func (h *Hierarchy) TypeOf(name string) (Type, bool) {
	t, ok := h.classes[name]
	return t, ok
}

// Classes returns the class names in declaration order.
func (h *Hierarchy) Classes() []string {
	out := make([]string, len(h.order))
	copy(out, h.order)
	return out
}

// Parents returns the immediate superclasses of c.
func (h *Hierarchy) Parents(c string) []string {
	ps := h.parents[c]
	out := make([]string, len(ps))
	copy(out, ps)
	return out
}

// IsSubclass reports the reflexive-transitive relation c ≺* sup.
func (h *Hierarchy) IsSubclass(c, sup string) bool {
	if c == sup {
		return true
	}
	seen := map[string]bool{c: true}
	stack := []string{c}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range h.parents[cur] {
			if p == sup {
				return true
			}
			if !seen[p] {
				seen[p] = true
				stack = append(stack, p)
			}
		}
	}
	return false
}

// Subclasses returns every class c' with c' ≺* c (including c itself),
// sorted by name. π(c) is the union of the disjoint extents of these.
func (h *Hierarchy) Subclasses(c string) []string {
	var out []string
	for name := range h.classes {
		if h.IsSubclass(name, c) {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Superclasses returns every class c' with c ≺* c' (including c itself),
// sorted by name.
func (h *Hierarchy) Superclasses(c string) []string {
	var out []string
	for name := range h.classes {
		if h.IsSubclass(c, name) {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// LeastCommonSuperclass returns the most specific common superclass of a
// and b under ≺*, or "" when their only common supertype is any. When
// several incomparable common superclasses exist, the one with the fewest
// superclasses (most specific) and then lexicographically least is chosen,
// making the result deterministic.
func (h *Hierarchy) LeastCommonSuperclass(a, b string) string {
	common := make([]string, 0, 4)
	for _, s := range h.Superclasses(a) {
		if h.IsSubclass(b, s) {
			common = append(common, s)
		}
	}
	if len(common) == 0 {
		return ""
	}
	best := ""
	bestRank := -1
	for _, c := range common {
		// A common superclass is minimal if no other common superclass is
		// strictly below it.
		minimal := true
		for _, d := range common {
			if d != c && h.IsSubclass(d, c) {
				minimal = false
				break
			}
		}
		if !minimal {
			continue
		}
		rank := len(h.Superclasses(c))
		if best == "" || rank < bestRank || (rank == bestRank && c < best) {
			best, bestRank = c, rank
		}
	}
	return best
}

// Check validates well-formedness: every inheritance edge links declared
// classes, ≺ is acyclic, and for each c ≺ c', σ(c) ≤ σ(c').
func (h *Hierarchy) Check() error {
	// Acyclicity via colouring.
	const (
		white = 0
		grey  = 1
		black = 2
	)
	colour := make(map[string]int, len(h.classes))
	var visit func(c string) error
	visit = func(c string) error {
		switch colour[c] {
		case grey:
			return fmt.Errorf("object: inheritance cycle through class %q", c)
		case black:
			return nil
		}
		colour[c] = grey
		for _, p := range h.parents[c] {
			if err := visit(p); err != nil {
				return err
			}
		}
		colour[c] = black
		return nil
	}
	for _, c := range h.order {
		if err := visit(c); err != nil {
			return err
		}
	}
	for _, c := range h.order {
		tc := h.classes[c]
		for _, p := range h.parents[c] {
			tp := h.classes[p]
			if !Subtype(h, tc, tp) {
				return fmt.Errorf("object: class %q inherits %q but σ(%s)=%s is not a subtype of σ(%s)=%s",
					c, p, c, tc, p, tp)
			}
		}
	}
	return nil
}

// Clone returns a deep copy of the hierarchy (types are immutable and
// shared).
func (h *Hierarchy) Clone() *Hierarchy {
	c := NewHierarchy()
	for _, name := range h.order {
		c.classes[name] = h.classes[name]
		c.order = append(c.order, name)
		if ps := h.parents[name]; len(ps) > 0 {
			cp := make([]string, len(ps))
			copy(cp, ps)
			c.parents[name] = cp
		}
	}
	return c
}
