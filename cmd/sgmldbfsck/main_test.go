package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sgmldb/internal/wal"
)

// seedDir builds a data directory holding a few committed records, then
// returns it together with the full log bytes for damage injection.
func seedDir(t *testing.T) (dir string, logData []byte) {
	t.Helper()
	dir = t.TempDir()
	l, _, _, err := wal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	recs := []wal.Record{
		{Kind: wal.KindSchema, Schema: "<!ELEMENT a (#PCDATA)>"},
		{Kind: wal.KindLoad, Docs: []string{"<a>one</a>"}},
		{Kind: wal.KindName, Name: "my_a", OID: 3},
	}
	for _, r := range recs {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	data, err := os.ReadFile(filepath.Join(dir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	return dir, data
}

func runFsck(t *testing.T, args ...string) (code int, out string) {
	t.Helper()
	var stdout, stderr strings.Builder
	code = run(args, &stdout, &stderr)
	return code, stdout.String() + stderr.String()
}

func TestFsckExitCodes(t *testing.T) {
	dir, data := seedDir(t)

	// Clean directory: verify exits 0.
	if code, out := runFsck(t, "-verify", dir); code != 0 || !strings.Contains(out, "clean") {
		t.Fatalf("verify clean: exit %d, out %q", code, out)
	}

	// Torn tail: verify exits 1 without touching the file, repair exits 0
	// and a re-verify is clean.
	logPath := filepath.Join(dir, "wal.log")
	if err := os.WriteFile(logPath, data[:len(data)-2], 0o644); err != nil {
		t.Fatal(err)
	}
	if code, out := runFsck(t, "-verify", dir); code != 1 || !strings.Contains(out, "torn tail") {
		t.Fatalf("verify torn: exit %d, out %q", code, out)
	}
	if after, _ := os.ReadFile(logPath); len(after) != len(data)-2 {
		t.Fatal("verify modified the log")
	}
	if code, out := runFsck(t, "-repair", dir); code != 0 || !strings.Contains(out, "repaired") {
		t.Fatalf("repair torn: exit %d, out %q", code, out)
	}
	if code, _ := runFsck(t, "-verify", dir); code != 0 {
		t.Fatalf("re-verify after repair: exit %d", code)
	}

	// Mid-log corruption: exit 2 under both modes.
	repaired, _ := os.ReadFile(logPath)
	repaired[20] ^= 0xff // inside the first frame, records behind it
	if err := os.WriteFile(logPath, repaired, 0o644); err != nil {
		t.Fatal(err)
	}
	if code, out := runFsck(t, "-verify", dir); code != 2 || !strings.Contains(out, "CORRUPT") {
		t.Fatalf("verify corrupt: exit %d, out %q", code, out)
	}
	if code, _ := runFsck(t, "-repair", dir); code != 2 {
		t.Fatalf("repair corrupt: exit %d, want 2 (never repaired)", code)
	}
}

// seedMixedTermDir builds a directory whose log spans a promotion: two
// records at term 1, a term bump to 2, one record at term 2.
func seedMixedTermDir(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	l, _, _, err := wal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []wal.Record{
		{Kind: wal.KindSchema, Schema: "<!ELEMENT a (#PCDATA)>"},
		{Kind: wal.KindLoad, Docs: []string{"<a>one</a>"}},
		{Kind: wal.KindTerm, Term: 2},
		{Kind: wal.KindLoad, Docs: []string{"<a>two</a>"}},
	} {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	return dir
}

func TestFsckMixedTerms(t *testing.T) {
	dir := seedMixedTermDir(t)

	// Verify reports the term chain on a clean mixed-term directory.
	code, out := runFsck(t, "-verify", dir)
	if code != 0 {
		t.Fatalf("verify mixed-term: exit %d, out %q", code, out)
	}
	if !strings.Contains(out, "terms: first 1, last 2, 1 bumps") {
		t.Fatalf("verify mixed-term: term chain missing, out %q", out)
	}

	// A torn tail behind the boundary repairs without crossing it: the
	// bump frame and everything before it survive.
	logPath := filepath.Join(dir, "wal.log")
	data, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(logPath, data[:len(data)-2], 0o644); err != nil {
		t.Fatal(err)
	}
	if code, out := runFsck(t, "-repair", dir); code != 0 || !strings.Contains(out, "repaired") {
		t.Fatalf("repair torn mixed-term: exit %d, out %q", code, out)
	}
	if code, out := runFsck(t, "-verify", dir); code != 0 || !strings.Contains(out, "terms: first 1, last 2, 1 bumps") {
		t.Fatalf("re-verify after repair: exit %d, out %q — repair crossed the term boundary", code, out)
	}
}

func TestFsckTermRegressionIsCorrupt(t *testing.T) {
	dir := seedMixedTermDir(t)
	logPath := filepath.Join(dir, "wal.log")

	// Forge a term regression: a scratch log Reset to (seq 4, term 1)
	// yields a seq-5 frame stamped term 1; spliced after the term-2 tail
	// the sequence chain stays intact but the term chain goes backwards.
	scratch := t.TempDir()
	sl, _, _, err := wal.Open(scratch)
	if err != nil {
		t.Fatal(err)
	}
	if err := sl.Reset(4, 1); err != nil {
		t.Fatal(err)
	}
	if err := sl.Append(wal.Record{Kind: wal.KindLoad, Docs: []string{"<a>stale</a>"}}); err != nil {
		t.Fatal(err)
	}
	sl.Close()
	forged, err := os.ReadFile(filepath.Join(scratch, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	frames := forged[strings.IndexByte(string(forged), '\n')+1:] // strip the magic line
	f, err := os.OpenFile(logPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(frames); err != nil {
		t.Fatal(err)
	}
	f.Close()
	spliced, _ := os.ReadFile(logPath)

	// Both modes exit 2; repair leaves the file byte-identical — it never
	// truncates across a term boundary to "fix" another primary's history.
	if code, out := runFsck(t, "-verify", dir); code != 2 || !strings.Contains(out, "term regression") {
		t.Fatalf("verify regression: exit %d, out %q", code, out)
	}
	if code, _ := runFsck(t, "-repair", dir); code != 2 {
		t.Fatalf("repair regression: exit %d, want 2 (never repaired)", code)
	}
	after, _ := os.ReadFile(logPath)
	if len(after) != len(spliced) {
		t.Fatalf("repair modified a term-regressed log: %d bytes, was %d", len(after), len(spliced))
	}
}

func TestFsckUsageErrors(t *testing.T) {
	dir, _ := seedDir(t)
	for _, args := range [][]string{
		{},                          // no mode, no dir
		{dir},                       // no mode
		{"-verify"},                 // no dir
		{"-verify", "-repair", dir}, // both modes
		{"-verify", filepath.Join(dir, "nope")}, // unreadable dir
	} {
		if code, _ := runFsck(t, args...); code != 3 {
			t.Errorf("run(%v) = %d, want 3", args, code)
		}
	}
}
