// Package path implements Section 4.3 and 5.2 of the paper: paths as
// first-class citizens. A concrete path is a sequence of steps —
//
//	·a   follow attribute a of a tuple or marked union
//	[i]  take the i-th element of a list
//	→    dereference an object
//	{v}  take member v of a set
//
// Paths are themselves data: a path value is an object.List whose elements
// are marked-union step values, so the paper's claims hold literally —
// "list functions can be used on paths": length(P) is the list length and
// P[0:1] a list slice — and sets of paths support the difference query Q4.
//
// The package provides construction, parsing and printing of paths,
// application of a path to a value, and enumeration of all concrete paths
// from a value under the paper's two semantics: the restricted semantics
// (no two dereferences of objects in the same class — the default, which
// keeps the path set schema-bounded and algebraizable) and the liberal
// semantics (no object visited twice — data-bounded, for hypertext-style
// navigation).
package path

import (
	"fmt"
	"strconv"
	"strings"

	"sgmldb/internal/object"
)

// StepKind discriminates path steps.
//
//sgmldbvet:closed
type StepKind int

// The four step kinds of Section 5.2.
const (
	StepAttr StepKind = iota
	StepIndex
	StepDeref
	StepMember
)

// Markers of the union-encoded step values.
const (
	attrMarker   = "attr"
	indexMarker  = "index"
	derefMarker  = "deref"
	memberMarker = "member"
)

// Step is the typed view of one path step.
type Step struct {
	Kind   StepKind
	Name   string       // for StepAttr
	Index  int          // for StepIndex
	Member object.Value // for StepMember
}

// Attr returns the step ·name.
func Attr(name string) Step { return Step{Kind: StepAttr, Name: name} }

// Index returns the step [i].
func Index(i int) Step { return Step{Kind: StepIndex, Index: i} }

// Deref returns the dereferencing step →.
func Deref() Step { return Step{Kind: StepDeref} }

// Member returns the step {v}.
func Member(v object.Value) Step { return Step{Kind: StepMember, Member: v} }

// Value encodes the step as a marked-union value.
func (s Step) Value() object.Value {
	switch s.Kind {
	case StepAttr:
		return object.NewUnion(attrMarker, object.String_(s.Name))
	case StepIndex:
		return object.NewUnion(indexMarker, object.Int(s.Index))
	case StepDeref:
		return object.NewUnion(derefMarker, object.Bool(true))
	case StepMember:
		return object.NewUnion(memberMarker, s.Member)
	default:
		//lint:allow panic unreachable: the switch covers every StepKind constant (enforced by sgmldbvet exhaustive)
		panic(fmt.Sprintf("path: unknown step kind %d", s.Kind))
	}
}

// StepFromValue decodes a marked-union step value.
func StepFromValue(v object.Value) (Step, error) {
	u, ok := v.(*object.Union_)
	if !ok {
		return Step{}, fmt.Errorf("path: %s is not a step value", v)
	}
	switch u.Marker {
	case attrMarker:
		s, ok := u.Value.(object.String_)
		if !ok {
			return Step{}, fmt.Errorf("path: bad attr step %s", v)
		}
		return Attr(string(s)), nil
	case indexMarker:
		i, ok := u.Value.(object.Int)
		if !ok {
			return Step{}, fmt.Errorf("path: bad index step %s", v)
		}
		return Index(int(i)), nil
	case derefMarker:
		return Deref(), nil
	case memberMarker:
		return Member(u.Value), nil
	default:
		return Step{}, fmt.Errorf("path: unknown step marker %q", u.Marker)
	}
}

// String renders the step in the paper's syntax.
func (s Step) String() string {
	switch s.Kind {
	case StepAttr:
		return "." + s.Name
	case StepIndex:
		return "[" + strconv.Itoa(s.Index) + "]"
	case StepDeref:
		return "->"
	case StepMember:
		return "{" + s.Member.String() + "}"
	default:
		return "?"
	}
}

// Path is a concrete path: an immutable sequence of steps.
type Path struct {
	steps []Step
}

// Empty is the empty path ε.
var Empty = Path{}

// New builds a path from steps.
func New(steps ...Step) Path {
	cp := make([]Step, len(steps))
	copy(cp, steps)
	return Path{steps: cp}
}

// Len is the paper's length(P): the number of steps.
func (p Path) Len() int { return len(p.steps) }

// At returns the i-th step.
func (p Path) At(i int) Step { return p.steps[i] }

// Steps returns a copy of the step sequence.
func (p Path) Steps() []Step {
	cp := make([]Step, len(p.steps))
	copy(cp, p.steps)
	return cp
}

// Append returns p extended with more steps.
func (p Path) Append(steps ...Step) Path {
	cp := make([]Step, 0, len(p.steps)+len(steps))
	cp = append(cp, p.steps...)
	cp = append(cp, steps...)
	return Path{steps: cp}
}

// Concat returns pq.
func (p Path) Concat(q Path) Path { return p.Append(q.steps...) }

// Slice is the paper's P[i:j] projection (inclusive bounds in the paper's
// example: P[0:1] keeps the first two steps; here the conventional
// half-open [from, to) is used by Value-level slicing, so Slice(from, to)
// takes steps from..to-1, clamped).
func (p Path) Slice(from, to int) Path {
	if from < 0 {
		from = 0
	}
	if to > len(p.steps) {
		to = len(p.steps)
	}
	if from >= to {
		return Empty
	}
	return New(p.steps[from:to]...)
}

// HasPrefix reports whether q is a prefix of p.
func (p Path) HasPrefix(q Path) bool {
	if q.Len() > p.Len() {
		return false
	}
	for i, s := range q.steps {
		if !stepEqual(p.steps[i], s) {
			return false
		}
	}
	return true
}

func stepEqual(a, b Step) bool {
	if a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case StepAttr:
		return a.Name == b.Name
	case StepIndex:
		return a.Index == b.Index
	case StepMember:
		return object.Equal(a.Member, b.Member)
	default:
		return true
	}
}

// Equal reports path equality.
func (p Path) Equal(q Path) bool {
	if len(p.steps) != len(q.steps) {
		return false
	}
	for i := range p.steps {
		if !stepEqual(p.steps[i], q.steps[i]) {
			return false
		}
	}
	return true
}

// Value encodes the path as a first-class data value: a list of step
// values. length(P) and P[0:1] are ordinary list operations on it.
func (p Path) Value() object.Value {
	elems := make([]object.Value, len(p.steps))
	for i, s := range p.steps {
		elems[i] = s.Value()
	}
	return object.NewList(elems...)
}

// FromValue decodes a path value produced by Value.
func FromValue(v object.Value) (Path, error) {
	l, ok := v.(*object.List)
	if !ok {
		return Empty, fmt.Errorf("path: %s is not a path value", v)
	}
	steps := make([]Step, l.Len())
	for i := 0; i < l.Len(); i++ {
		s, err := StepFromValue(l.At(i))
		if err != nil {
			return Empty, err
		}
		steps[i] = s
	}
	return Path{steps: steps}, nil
}

// String renders the path, e.g. ".sections[0].subsectns[0]"; the empty
// path renders as "ε".
func (p Path) String() string {
	if len(p.steps) == 0 {
		return "ε"
	}
	var b strings.Builder
	for _, s := range p.steps {
		b.WriteString(s.String())
	}
	return b.String()
}

// Key returns a canonical encoding (distinct paths have distinct keys).
func (p Path) Key() string { return object.Key(p.Value()) }

// Parse reads a path in the String syntax: a sequence of ".name", "[i]",
// "->" and "{literal}" steps, where literal is an integer, a quoted
// string, true or false. The empty string and "ε" parse to the empty
// path.
func Parse(s string) (Path, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == "ε" {
		return Empty, nil
	}
	var steps []Step
	i := 0
	for i < len(s) {
		switch {
		case s[i] == '.':
			i++
			start := i
			for i < len(s) && (isIdent(s[i])) {
				i++
			}
			if start == i {
				return Empty, fmt.Errorf("path: expected attribute name at %d in %q", i, s)
			}
			steps = append(steps, Attr(s[start:i]))
		case s[i] == '[':
			i++
			start := i
			for i < len(s) && s[i] != ']' {
				i++
			}
			if i >= len(s) {
				return Empty, fmt.Errorf("path: unterminated index in %q", s)
			}
			n, err := strconv.Atoi(strings.TrimSpace(s[start:i]))
			if err != nil {
				return Empty, fmt.Errorf("path: bad index %q in %q", s[start:i], s)
			}
			i++
			steps = append(steps, Index(n))
		case strings.HasPrefix(s[i:], "->"):
			i += 2
			steps = append(steps, Deref())
		case s[i] == '{':
			i++
			start := i
			depth := 1
			for i < len(s) && depth > 0 {
				switch s[i] {
				case '{':
					depth++
				case '}':
					depth--
				}
				if depth > 0 {
					i++
				}
			}
			if depth != 0 {
				return Empty, fmt.Errorf("path: unterminated member in %q", s)
			}
			lit := strings.TrimSpace(s[start:i])
			i++
			v, err := parseLiteral(lit)
			if err != nil {
				return Empty, err
			}
			steps = append(steps, Member(v))
		default:
			return Empty, fmt.Errorf("path: unexpected %q at %d in %q", s[i], i, s)
		}
	}
	return Path{steps: steps}, nil
}

func isIdent(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_'
}

func parseLiteral(s string) (object.Value, error) {
	switch {
	case s == "true":
		return object.Bool(true), nil
	case s == "false":
		return object.Bool(false), nil
	case len(s) >= 2 && s[0] == '"':
		unq, err := strconv.Unquote(s)
		if err != nil {
			return nil, fmt.Errorf("path: bad string literal %q", s)
		}
		return object.String_(unq), nil
	default:
		if n, err := strconv.ParseInt(s, 10, 64); err == nil {
			return object.Int(n), nil
		}
		if f, err := strconv.ParseFloat(s, 64); err == nil {
			return object.Float(f), nil
		}
		return nil, fmt.Errorf("path: bad member literal %q", s)
	}
}

// IsStepValue reports whether v encodes a path step.
func IsStepValue(v object.Value) bool {
	_, err := StepFromValue(v)
	return err == nil
}

// IsPathValue reports whether v encodes a path.
func IsPathValue(v object.Value) bool {
	_, err := FromValue(v)
	return err == nil
}
