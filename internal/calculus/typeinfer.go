package calculus

import (
	"fmt"
	"sort"

	"sgmldb/internal/object"
	"sgmldb/internal/path"
	"sgmldb/internal/store"
)

// This file implements the typing of Section 5.3: "typing is essentially a
// consequence of range restriction — once the range of a variable is
// known, it determines its type". Variables restricted through path
// predicates with path or attribute variables receive union types (one
// alternative per type reachable), exactly the polymorphism the paper
// describes.

// TypeInfo is the inferred typing of a query's variables.
type TypeInfo struct {
	// Data maps each data variable to its possible types (more than one
	// when path/attribute variables make the range polymorphic).
	Data map[string][]object.Type
	// Attr maps each attribute variable to its candidate attribute names.
	Attr map[string][]string
	// PathVars lists the path variables encountered.
	PathVars []string
}

// TypeOf returns the single inferred type of a data variable: the type
// itself when unique, or the marked union of the alternatives with
// system-supplied markers α1, α2, … (Section 5.3).
func (ti *TypeInfo) TypeOf(name string) (object.Type, bool) {
	ts, ok := ti.Data[name]
	if !ok || len(ts) == 0 {
		return nil, false
	}
	return UnionOfTypes(ts), true
}

// UnionOfTypes folds a set of possible types into one type: the single
// type when unique, otherwise the marked union (α1: τ1 + … + αn: τn) with
// system-supplied markers.
func UnionOfTypes(ts []object.Type) object.Type {
	ded := dedupTypes(ts)
	if len(ded) == 1 {
		return ded[0]
	}
	alts := make([]object.TField, len(ded))
	for i, t := range ded {
		alts[i] = object.TField{Name: fmt.Sprintf("α%d", i+1), Type: t}
	}
	return object.UnionOf(alts...)
}

func dedupTypes(ts []object.Type) []object.Type {
	seen := map[string]bool{}
	var out []object.Type
	for _, t := range ts {
		k := object.TypeKey(t)
		if !seen[k] {
			seen[k] = true
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return object.TypeKey(out[i]) < object.TypeKey(out[j])
	})
	return out
}

// InferTypes infers variable types for a query over a schema. It follows
// the same conjunct order as evaluation and propagates sets of possible
// types through path terms.
func InferTypes(schema *store.Schema, q *Query) (*TypeInfo, error) {
	ti := &TypeInfo{Data: map[string][]object.Type{}, Attr: map[string][]string{}}
	inf := &inferencer{schema: schema, ti: ti}
	if err := inf.formula(q.Body); err != nil {
		return nil, err
	}
	for k := range ti.Data {
		ti.Data[k] = dedupTypes(ti.Data[k])
	}
	for k := range ti.Attr {
		ti.Attr[k] = dedupStrings(ti.Attr[k])
	}
	ti.PathVars = dedupStrings(ti.PathVars)
	return ti, nil
}

func dedupStrings(in []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	sort.Strings(out)
	return out
}

type inferencer struct {
	schema *store.Schema
	ti     *TypeInfo
}

func (inf *inferencer) formula(f Formula) error {
	switch x := f.(type) {
	case And:
		if err := inf.formula(x.L); err != nil {
			return err
		}
		return inf.formula(x.R)
	case Or:
		if err := inf.formula(x.L); err != nil {
			return err
		}
		return inf.formula(x.R)
	case Not:
		return inf.formula(x.F)
	case Exists:
		return inf.formula(x.Body)
	case Forall:
		if err := inf.formula(x.Range); err != nil {
			return err
		}
		return inf.formula(x.Then)
	case PathAtom:
		base, err := inf.baseTypes(x.Base)
		if err != nil {
			return err
		}
		inf.pathTerm(base, x.Path.Elems)
		return nil
	case In:
		// X ∈ t restricts X to t's element type.
		if v, ok := x.L.(Var); ok {
			for _, t := range inf.dataTermTypes(x.R) {
				switch c := t.(type) {
				case object.SetType:
					inf.ti.Data[v.Name] = append(inf.ti.Data[v.Name], c.Elem)
				case object.ListType:
					inf.ti.Data[v.Name] = append(inf.ti.Data[v.Name], c.Elem)
				default:
					// non-collection range types constrain nothing
				}
			}
		}
		return nil
	case Eq:
		if v, ok := x.L.(Var); ok {
			inf.ti.Data[v.Name] = append(inf.ti.Data[v.Name], inf.dataTermTypes(x.R)...)
		}
		if v, ok := x.R.(Var); ok {
			inf.ti.Data[v.Name] = append(inf.ti.Data[v.Name], inf.dataTermTypes(x.L)...)
		}
		return nil
	default:
		return nil
	}
}

// baseTypes computes the possible types of a path atom's base.
func (inf *inferencer) baseTypes(t DataTerm) ([]object.Type, error) {
	ts := inf.dataTermTypes(t)
	if len(ts) == 0 {
		return nil, fmt.Errorf("calculus: cannot type base term %s", t)
	}
	return ts, nil
}

func (inf *inferencer) dataTermTypes(t DataTerm) []object.Type {
	switch x := t.(type) {
	case NameRef:
		if ty, ok := inf.schema.RootType(x.Name); ok {
			return []object.Type{ty}
		}
		return nil
	case Const:
		if ty := typeOfValue(x.V); ty != nil {
			return []object.Type{ty}
		}
		return nil
	case Var:
		return inf.ti.Data[x.Name]
	default:
		return nil
	}
}

func typeOfValue(v object.Value) object.Type {
	switch v.(type) {
	case object.Int:
		return object.IntType
	case object.Float:
		return object.FloatType
	case object.String_:
		return object.StringType
	case object.Bool:
		return object.BoolType
	case object.OID:
		return object.Any
	default:
		return nil
	}
}

// pathTerm walks the path elements over the possible types.
func (inf *inferencer) pathTerm(types []object.Type, elems []PathElem) {
	cur := types
	for _, el := range elems {
		switch x := el.(type) {
		case ElemBind:
			inf.ti.Data[x.X] = append(inf.ti.Data[x.X], cur...)
		case ElemVar:
			inf.ti.PathVars = append(inf.ti.PathVars, x.Name)
			// The variable can stop at any type reachable from any
			// current type.
			var next []object.Type
			for _, t := range cur {
				for _, ta := range path.EnumerateSchema(inf.schema.Hierarchy(), t, 0) {
					next = append(next, ta.Type)
				}
			}
			cur = dedupTypes(next)
		case ElemDeref:
			var next []object.Type
			for _, t := range cur {
				if c, ok := t.(object.ClassType); ok {
					next = append(next, inf.classValueTypes(c.Name)...)
				}
				if _, ok := t.(object.AnyType); ok {
					for _, cl := range inf.schema.Hierarchy().Classes() {
						next = append(next, inf.classValueTypes(cl)...)
					}
				}
			}
			cur = dedupTypes(next)
		case ElemAttr:
			var next []object.Type
			switch a := x.A.(type) {
			case AttrName:
				for _, t := range cur {
					next = append(next, attrTypes(t, a.Name)...)
				}
			case AttrVar:
				for _, t := range cur {
					switch c := t.(type) {
					case object.TupleType:
						for _, f := range c.Fields() {
							inf.ti.Attr[a.Name] = append(inf.ti.Attr[a.Name], f.Name)
							next = append(next, f.Type)
						}
					case object.UnionType:
						for _, alt := range c.Alts() {
							inf.ti.Attr[a.Name] = append(inf.ti.Attr[a.Name], alt.Name)
							next = append(next, alt.Type)
						}
					default:
						// other kinds have no attributes
					}
				}
			}
			cur = dedupTypes(next)
		case ElemIndex:
			if v, ok := x.I.(Var); ok {
				inf.ti.Data[v.Name] = append(inf.ti.Data[v.Name], object.IntType)
			}
			var next []object.Type
			for _, t := range cur {
				switch c := t.(type) {
				case object.ListType:
					next = append(next, c.Elem)
				case object.TupleType:
					next = append(next, object.HeterogeneousListType(c).Elem)
				default:
					// other kinds are not indexable
				}
			}
			cur = dedupTypes(next)
		case ElemMember:
			var next []object.Type
			for _, t := range cur {
				if c, ok := t.(object.SetType); ok {
					next = append(next, c.Elem)
					if v, ok := x.T.(Var); ok {
						inf.ti.Data[v.Name] = append(inf.ti.Data[v.Name], c.Elem)
					}
				}
			}
			cur = dedupTypes(next)
		}
	}
}

// classValueTypes returns the value types of a class's extent: σ(c') for
// every c' ≺* c.
func (inf *inferencer) classValueTypes(class string) []object.Type {
	var out []object.Type
	for _, sub := range inf.schema.Hierarchy().Subclasses(class) {
		if t, ok := inf.schema.Hierarchy().TypeOf(sub); ok {
			out = append(out, t)
		}
	}
	return out
}

// attrTypes resolves a named attribute step on a type, with implicit
// selectors through union markers.
func attrTypes(t object.Type, name string) []object.Type {
	switch c := t.(type) {
	case object.TupleType:
		if ft, ok := c.Get(name); ok {
			return []object.Type{ft}
		}
		return nil
	case object.UnionType:
		if alt, ok := c.Get(name); ok {
			return []object.Type{alt}
		}
		// Implicit selector: the attribute may live inside alternatives.
		var out []object.Type
		for _, alt := range c.Alts() {
			out = append(out, attrTypes(alt.Type, name)...)
		}
		return out
	default:
		return nil
	}
}
