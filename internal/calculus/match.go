package calculus

import (
	"sgmldb/internal/object"
	"sgmldb/internal/path"
)

// matchPath interprets a path predicate ⟨v P⟩: it extends the valuation
// with every instantiation of the path term's variables such that the
// resulting concrete path exists from base. Unbound path variables range
// over the concrete paths admitted by the environment's semantics
// (restricted by default); attribute variables over applicable attributes;
// index variables over list positions; member variables over set members;
// (X) bindings capture the value reached.
//
// A step that does not apply to the value at hand simply yields no match:
// "we will assume that each atom where this occurs is false" (Section
// 5.3). Implicit selectors apply: a named attribute step on a marked
// union whose marker differs descends through the marker transparently
// (Section 4.2's "Important Omissions") — but an attribute *variable*
// binds the marker itself, so that queries over attributes see the true
// structure.
func (e *Env) matchPath(base object.Value, elems []PathElem, v Valuation) ([]Valuation, error) {
	return e.matchElems(base, elems, v)
}

func (e *Env) matchElems(cur object.Value, elems []PathElem, v Valuation) ([]Valuation, error) {
	if len(elems) == 0 {
		return []Valuation{v}, nil
	}
	head, rest := elems[0], elems[1:]
	switch x := head.(type) {
	case ElemBind:
		if b, bound := v[x.X]; bound {
			if !object.Equiv(b.Value(), cur) {
				return nil, nil
			}
			return e.matchElems(cur, rest, v)
		}
		return e.matchElems(cur, rest, v.extend(x.X, DataBinding(cur)))
	case ElemVar:
		if b, bound := v[x.Name]; bound {
			// Follow the already-chosen concrete path.
			val, err := e.applyWithSelectors(cur, b.Path)
			if err != nil {
				return nil, nil // path does not exist here: atom false
			}
			return e.matchElems(val, rest, v)
		}
		// Range over all concrete paths from cur under the semantics.
		bindings := path.Enumerate(e.Inst, cur, path.Options{
			Semantics: e.Semantics, MaxLen: e.MaxPathLen,
		})
		var out []Valuation
		for i, pb := range bindings {
			// The enumeration is the naive evaluator's hot scan: check
			// cancellation (and charge the cost meter) once per
			// enumerated path partition.
			if err := e.pollCtx(i); err != nil {
				return nil, err
			}
			sub, err := e.matchElems(pb.Value, rest, v.extend(x.Name, PathBinding(pb.Path)))
			if err != nil {
				return nil, err
			}
			out = append(out, sub...)
		}
		return out, nil
	case ElemDeref:
		o, ok := object.UnwrapUnion(cur).(object.OID)
		if !ok || e.Inst == nil {
			return nil, nil
		}
		inner, ok := e.Inst.Deref(o)
		if !ok {
			return nil, nil
		}
		return e.matchElems(inner, rest, v)
	case ElemAttr:
		switch a := x.A.(type) {
		case AttrName:
			return e.matchNamedAttr(cur, a.Name, rest, v)
		case AttrVar:
			if b, bound := v[a.Name]; bound {
				return e.matchNamedAttr(cur, b.Attr, rest, v)
			}
			// Bind the variable to each applicable attribute.
			var out []Valuation
			switch val := cur.(type) {
			case *object.Tuple:
				for i := 0; i < val.Len(); i++ {
					f := val.At(i)
					sub, err := e.matchElems(f.Value, rest, v.extend(a.Name, AttrBinding(f.Name)))
					if err != nil {
						return nil, err
					}
					out = append(out, sub...)
				}
			case *object.Union_:
				sub, err := e.matchElems(val.Value, rest, v.extend(a.Name, AttrBinding(val.Marker)))
				if err != nil {
					return nil, err
				}
				out = append(out, sub...)
			default:
				// other kinds have no attributes: no match
			}
			return out, nil
		}
		return nil, nil
	case ElemIndex:
		// Ordered tuples embed as heterogeneous lists (Section 4.4), and
		// marking attributes are skipped implicitly (Section 5.3's
		// "Important Omissions": Letters[I](Y)[J]·to indexes into the
		// letter tuple through its permutation marker). Objects are
		// dereferenced implicitly.
		l, ok := object.AsList(e.implicitDeref(object.UnwrapUnion(cur)))
		if !ok {
			return nil, nil
		}
		if iv, isVar := x.I.(Var); isVar {
			if _, bound := v[iv.Name]; !bound {
				var out []Valuation
				for i := 0; i < l.Len(); i++ {
					sub, err := e.matchElems(l.At(i), rest, v.extend(iv.Name, DataBinding(object.Int(i))))
					if err != nil {
						return nil, err
					}
					out = append(out, sub...)
				}
				return out, nil
			}
		}
		idx, err := e.evalDataTerm(x.I, v)
		if err != nil {
			return nil, err
		}
		n, ok := idx.(object.Int)
		if !ok || int(n) < 0 || int(n) >= l.Len() {
			return nil, nil
		}
		return e.matchElems(l.At(int(n)), rest, v)
	case ElemMember:
		s, ok := e.implicitDeref(object.UnwrapUnion(cur)).(*object.Set)
		if !ok {
			return nil, nil
		}
		if mv, isVar := x.T.(Var); isVar {
			if _, bound := v[mv.Name]; !bound {
				var out []Valuation
				for i := 0; i < s.Len(); i++ {
					el := s.At(i)
					sub, err := e.matchElems(el, rest, v.extend(mv.Name, DataBinding(el)))
					if err != nil {
						return nil, err
					}
					out = append(out, sub...)
				}
				return out, nil
			}
		}
		m, err := e.evalDataTerm(x.T, v)
		if err != nil {
			return nil, err
		}
		if !s.Contains(m) {
			return nil, nil
		}
		return e.matchElems(m, rest, v)
	default:
		return nil, nil
	}
}

// implicitDeref resolves an oid to its value (identity navigation); other
// values pass through.
func (e *Env) implicitDeref(v object.Value) object.Value {
	if o, ok := v.(object.OID); ok && e.Inst != nil {
		if inner, ok := e.Inst.Deref(o); ok {
			return object.UnwrapUnion(inner)
		}
	}
	return v
}

// matchNamedAttr applies a named attribute step with implicit selectors:
// on a tuple it selects the field; on a marked union whose marker is the
// name it enters the alternative; on a marked union with a different
// marker it descends through the marker and retries (the omitted marking
// attributes of Section 5.3).
func (e *Env) matchNamedAttr(cur object.Value, name string, rest []PathElem, v Valuation) ([]Valuation, error) {
	switch val := cur.(type) {
	case *object.Tuple:
		f, ok := val.Get(name)
		if !ok {
			return nil, nil
		}
		return e.matchElems(f, rest, v)
	case *object.Union_:
		if val.Marker == name {
			return e.matchElems(val.Value, rest, v)
		}
		// Implicit selector: skip the marker.
		return e.matchNamedAttr(val.Value, name, rest, v)
	case object.OID:
		// Implicit dereference (O₂SQL navigation through identity).
		if e.Inst == nil {
			return nil, nil
		}
		inner, ok := e.Inst.Deref(val)
		if !ok {
			return nil, nil
		}
		return e.matchNamedAttr(inner, name, rest, v)
	default:
		return nil, nil
	}
}
