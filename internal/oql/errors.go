package oql

import "errors"

// Sentinel errors of the query front end. The sgmldb facade re-exports
// them (and cmd/sgmldbd maps them to wire codes), so a caller can tell a
// malformed query from a well-formed one that fails the static checks
// without parsing message text. Test with errors.Is.
var (
	// ErrParse wraps every lexical and syntactic error: the source is not
	// a well-formed O₂SQL query.
	ErrParse = errors.New("oql: parse error")

	// ErrTypecheck wraps every static Section 4.2 type error, and the
	// execution-time type errors of the paper's deferred checks (a path
	// step that does not apply to the named instance).
	ErrTypecheck = errors.New("oql: type error")
)
