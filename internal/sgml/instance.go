package sgml

import (
	"fmt"
	"strconv"
	"strings"
)

// Node is a node of the parsed document tree: an *Element or a Text run.
//
//sgmldbvet:closed
type Node interface{ node() }

// Text is a run of character data.
type Text string

func (Text) node() {}

// Attr is one specified (or defaulted) attribute of an element.
type Attr struct {
	Name  string
	Value string
}

// Element is a document element: its (lower-cased) generic identifier, its
// attributes and its content in document order.
type Element struct {
	Name     string
	Attrs    []Attr
	Children []Node
	// Implied records that the start tag was omitted in the source and
	// inferred from the content model.
	Implied bool
}

func (*Element) node() {}

// Attr returns the value of the named attribute and whether it was
// specified or defaulted.
func (e *Element) Attr(name string) (string, bool) {
	for _, a := range e.Attrs {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

// ChildElements returns the element children in order.
func (e *Element) ChildElements() []*Element {
	var out []*Element
	for _, c := range e.Children {
		if el, ok := c.(*Element); ok {
			out = append(out, el)
		}
	}
	return out
}

// Text returns the concatenated character data of the element and its
// descendants, in document order — the inverse mapping the paper's text()
// operator relies on (Section 4.2).
func (e *Element) Text() string {
	var b strings.Builder
	var walk func(n Node)
	walk = func(n Node) {
		switch x := n.(type) {
		case Text:
			b.WriteString(string(x))
		case *Element:
			for _, c := range x.Children {
				walk(c)
			}
		}
	}
	walk(e)
	return strings.Join(strings.Fields(b.String()), " ")
}

// String renders the element as normalised SGML with all tags explicit.
func (e *Element) String() string {
	var b strings.Builder
	e.write(&b)
	return b.String()
}

func (e *Element) write(b *strings.Builder) {
	b.WriteByte('<')
	b.WriteString(e.Name)
	for _, a := range e.Attrs {
		fmt.Fprintf(b, " %s=%q", a.Name, a.Value)
	}
	b.WriteByte('>')
	for _, c := range e.Children {
		switch x := c.(type) {
		case Text:
			b.WriteString(string(x))
		case *Element:
			x.write(b)
		}
	}
	b.WriteString("</")
	b.WriteString(e.Name)
	b.WriteByte('>')
}

// Document is a parsed, validated document instance together with its DTD
// and the resolved ID map.
type Document struct {
	DTD  *DTD
	Root *Element
	// IDs maps ID attribute values to the elements carrying them.
	IDs map[string]*Element
}

// ParseDocument parses and validates src against the DTD. The source may
// include its own <!DOCTYPE ...> prologue (ignored in favour of dtd if both
// given; if dtd is nil the prologue is parsed and used). Omitted end tags
// are inferred wherever the DTD marks them omissible and the content model
// makes the closing unambiguous; start tags are inferred when the model
// requires exactly one element next and that element's start tag is
// omissible.
func ParseDocument(dtd *DTD, src string) (*Document, error) {
	// Split off a prologue when present.
	body := src
	if i := indexDoctype(src); i >= 0 {
		end, err := doctypeEnd(src, i)
		if err != nil {
			return nil, err
		}
		if dtd == nil {
			d, err := ParseDTD(src[i:end])
			if err != nil {
				return nil, err
			}
			dtd = d
		}
		body = src[end:]
	}
	if dtd == nil {
		return nil, fmt.Errorf("sgml: no DTD supplied and none found in the document")
	}
	p := &instParser{src: body, dtd: dtd}
	root, err := p.parse()
	if err != nil {
		return nil, err
	}
	doc := &Document{DTD: dtd, Root: root, IDs: make(map[string]*Element)}
	if err := doc.resolveIDs(); err != nil {
		return nil, err
	}
	return doc, nil
}

// indexDoctype finds the start of a <!DOCTYPE prologue, if any.
func indexDoctype(s string) int {
	up := strings.ToUpper(s)
	return strings.Index(up, "<!DOCTYPE")
}

// doctypeEnd returns the index just past the ]> of the prologue starting
// at i.
func doctypeEnd(s string, i int) (int, error) {
	depth := 0
	inLiteral := byte(0)
	for j := i; j < len(s); j++ {
		c := s[j]
		if inLiteral != 0 {
			if c == inLiteral {
				inLiteral = 0
			}
			continue
		}
		switch c {
		case '"', '\'':
			inLiteral = c
		case '[':
			depth++
		case ']':
			depth--
		case '>':
			if depth == 0 {
				return j + 1, nil
			}
		}
	}
	return 0, fmt.Errorf("sgml: unterminated DOCTYPE prologue")
}

// maxNesting bounds the element stack; it exists to turn pathological
// recursive start-tag inference into an error instead of a hang.
const maxNesting = 500

// instParser parses the document body with DTD-driven tag inference.
type instParser struct {
	src string
	pos int
	dtd *DTD
}

type openElem struct {
	elem    *Element
	matcher *Matcher
	decl    *ElementDecl
}

func (p *instParser) errf(format string, args ...any) error {
	line := 1 + strings.Count(p.src[:min(p.pos, len(p.src))], "\n")
	return fmt.Errorf("sgml: document line %d: %s", line, fmt.Sprintf(format, args...))
}

func (p *instParser) parse() (*Element, error) {
	var stack []openElem
	var root *Element

	closeTop := func() error {
		top := stack[len(stack)-1]
		if !top.matcher.Complete() {
			return p.errf("element %s closed with incomplete content; expected one of %v",
				top.elem.Name, top.matcher.Next())
		}
		stack = stack[:len(stack)-1]
		return nil
	}

	// push opens an element named name; it implies intermediate start tags
	// and end tags as the content models dictate.
	var push func(name string, attrs []Attr, implied bool) error
	push = func(name string, attrs []Attr, implied bool) error {
		decl, ok := p.dtd.Element(name)
		if !ok {
			return p.errf("undeclared element %s", name)
		}
		if len(stack) > maxNesting {
			return p.errf("nesting deeper than %d (recursive start-tag inference?)", maxNesting)
		}
		for len(stack) > 0 {
			top := stack[len(stack)-1]
			if top.matcher.CanStep(name) {
				break
			}
			// Try implying a start tag of a uniquely required element.
			if req, ok := top.matcher.Required(); ok {
				reqDecl, okd := p.dtd.Element(req)
				if okd && reqDecl.OmitStart && req != name {
					if err := push(req, nil, true); err != nil {
						return err
					}
					continue
				}
			}
			// Otherwise close the top element if its end tag may be omitted.
			if top.decl.OmitEnd && top.matcher.Complete() {
				if err := closeTop(); err != nil {
					return err
				}
				continue
			}
			return p.errf("element %s is not allowed in %s here; expected one of %v",
				name, top.elem.Name, top.matcher.Next())
		}
		if len(stack) == 0 {
			if root != nil {
				return p.errf("content after the document element")
			}
			if name != p.dtd.Name {
				return p.errf("document element is %s, DTD declares %s", name, p.dtd.Name)
			}
		} else {
			top := stack[len(stack)-1]
			top.matcher.Step(name)
		}
		el := &Element{Name: name, Implied: implied}
		el.Attrs = defaultedAttrs(decl, attrs)
		if err := checkAttrs(decl, el.Attrs, p.dtd); err != nil {
			return p.errf("%v", err)
		}
		if len(stack) == 0 {
			root = el
		} else {
			top := stack[len(stack)-1]
			top.elem.Children = append(top.elem.Children, el)
		}
		stack = append(stack, openElem{elem: el, matcher: NewMatcher(decl.Content), decl: decl})
		// EMPTY elements close immediately.
		if _, empty := decl.Content.(Empty); empty {
			return closeTop()
		}
		return nil
	}

	addText := func(text string) error {
		if strings.TrimSpace(text) == "" {
			// Whitespace between tags is record-structure noise, not data.
			return nil
		}
		for len(stack) > 0 {
			top := stack[len(stack)-1]
			if top.matcher.CanStep(PCDataSymbol) {
				top.matcher.Step(PCDataSymbol)
				top.elem.Children = append(top.elem.Children, Text(text))
				return nil
			}
			// Imply a required omissible start tag that can hold data
			// (e.g. an omitted <caption> before its text).
			if req, ok := top.matcher.Required(); ok {
				reqDecl, okd := p.dtd.Element(req)
				if okd && reqDecl.OmitStart {
					if err := push(req, nil, true); err != nil {
						return err
					}
					continue
				}
			}
			if top.decl.OmitEnd && top.matcher.Complete() {
				if err := closeTop(); err != nil {
					return err
				}
				continue
			}
			return p.errf("character data not allowed in element %s", top.elem.Name)
		}
		return p.errf("character data outside the document element")
	}

	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == '<' {
			switch {
			case strings.HasPrefix(p.src[p.pos:], "<!--"):
				end := strings.Index(p.src[p.pos+4:], "-->")
				if end < 0 {
					return nil, p.errf("unterminated comment")
				}
				p.pos += 4 + end + 3
			case strings.HasPrefix(p.src[p.pos:], "<?"):
				end := strings.Index(p.src[p.pos:], ">")
				if end < 0 {
					return nil, p.errf("unterminated processing instruction")
				}
				p.pos += end + 1
			case strings.HasPrefix(p.src[p.pos:], "</"):
				p.pos += 2
				name, err := p.tagName()
				if err != nil {
					return nil, err
				}
				p.skipToGT()
				// Close implied elements above the named one.
				found := false
				for i := len(stack) - 1; i >= 0; i-- {
					if stack[i].elem.Name == name {
						found = true
						break
					}
					if !stack[i].decl.OmitEnd {
						return nil, p.errf("end tag </%s> closes %s whose end tag is not omissible",
							name, stack[i].elem.Name)
					}
				}
				if !found {
					return nil, p.errf("end tag </%s> matches no open element", name)
				}
				for {
					top := stack[len(stack)-1]
					if err := closeTop(); err != nil {
						return nil, err
					}
					if top.elem.Name == name {
						break
					}
				}
			default:
				p.pos++
				name, err := p.tagName()
				if err != nil {
					return nil, err
				}
				attrs, err := p.attributes()
				if err != nil {
					return nil, err
				}
				if err := push(name, attrs, false); err != nil {
					return nil, err
				}
			}
			continue
		}
		// Character data up to the next tag.
		next := strings.IndexByte(p.src[p.pos:], '<')
		var raw string
		if next < 0 {
			raw = p.src[p.pos:]
			p.pos = len(p.src)
		} else {
			raw = p.src[p.pos : p.pos+next]
			p.pos += next
		}
		text, err := p.expandEntities(raw)
		if err != nil {
			return nil, err
		}
		if err := addText(text); err != nil {
			return nil, err
		}
	}
	if root == nil {
		return nil, p.errf("empty document")
	}
	// Close any remaining open elements, which must all be omissible and
	// complete.
	for len(stack) > 0 {
		top := stack[len(stack)-1]
		if !top.decl.OmitEnd {
			return nil, p.errf("unclosed element %s (end tag not omissible)", top.elem.Name)
		}
		if err := closeTop(); err != nil {
			return nil, err
		}
	}
	return root, nil
}

func (p *instParser) tagName() (string, error) {
	start := p.pos
	for p.pos < len(p.src) && isNameChar(p.src[p.pos]) {
		p.pos++
	}
	if p.pos == start {
		return "", p.errf("expected a tag name")
	}
	return strings.ToLower(p.src[start:p.pos]), nil
}

func (p *instParser) skipWS() {
	for p.pos < len(p.src) {
		switch p.src[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

func (p *instParser) skipToGT() {
	for p.pos < len(p.src) && p.src[p.pos] != '>' {
		p.pos++
	}
	if p.pos < len(p.src) {
		p.pos++
	}
}

// attributes parses name="value" pairs up to '>'. SGML also allows
// minimised attributes: a bare value (for enumerated types, e.g.
// <article final>) and unquoted token values.
func (p *instParser) attributes() ([]Attr, error) {
	var attrs []Attr
	for {
		p.skipWS()
		if p.pos >= len(p.src) {
			return nil, p.errf("unterminated start tag")
		}
		if p.src[p.pos] == '>' {
			p.pos++
			return attrs, nil
		}
		if p.src[p.pos] == '/' && p.pos+1 < len(p.src) && p.src[p.pos+1] == '>' {
			// XML-style empty-element tag; tolerated.
			p.pos += 2
			return attrs, nil
		}
		start := p.pos
		for p.pos < len(p.src) && isNameChar(p.src[p.pos]) {
			p.pos++
		}
		if p.pos == start {
			return nil, p.errf("malformed attribute at %q", snippet(p.src[p.pos:]))
		}
		name := strings.ToLower(p.src[start:p.pos])
		p.skipWS()
		if p.pos < len(p.src) && p.src[p.pos] == '=' {
			p.pos++
			p.skipWS()
			var val string
			if p.pos < len(p.src) && (p.src[p.pos] == '"' || p.src[p.pos] == '\'') {
				q := p.src[p.pos]
				p.pos++
				vs := p.pos
				for p.pos < len(p.src) && p.src[p.pos] != q {
					p.pos++
				}
				if p.pos >= len(p.src) {
					return nil, p.errf("unterminated attribute literal")
				}
				val = p.src[vs:p.pos]
				p.pos++
			} else {
				vs := p.pos
				for p.pos < len(p.src) && isNameChar(p.src[p.pos]) {
					p.pos++
				}
				val = p.src[vs:p.pos]
			}
			expanded, err := p.expandEntities(val)
			if err != nil {
				return nil, err
			}
			attrs = append(attrs, Attr{Name: name, Value: expanded})
		} else {
			// Minimised form: bare enumerated value.
			attrs = append(attrs, Attr{Name: "", Value: name})
		}
	}
}

// expandEntities substitutes general entity references &name; and numeric
// character references &#n;.
func (p *instParser) expandEntities(s string) (string, error) {
	if !strings.Contains(s, "&") {
		return s, nil
	}
	var b strings.Builder
	i := 0
	for i < len(s) {
		if s[i] != '&' {
			b.WriteByte(s[i])
			i++
			continue
		}
		j := i + 1
		if j < len(s) && s[j] == '#' {
			j++
			ns := j
			for j < len(s) && s[j] >= '0' && s[j] <= '9' {
				j++
			}
			if ns == j {
				b.WriteByte('&')
				i++
				continue
			}
			n, _ := strconv.Atoi(s[ns:j])
			b.WriteRune(rune(n))
			if j < len(s) && s[j] == ';' {
				j++
			}
			i = j
			continue
		}
		ns := j
		for j < len(s) && isNameChar(s[j]) {
			j++
		}
		if ns == j {
			b.WriteByte('&')
			i++
			continue
		}
		name := s[ns:j]
		if j < len(s) && s[j] == ';' {
			j++
		}
		switch name {
		case "amp":
			b.WriteByte('&')
		case "lt":
			b.WriteByte('<')
		case "gt":
			b.WriteByte('>')
		case "quot":
			b.WriteByte('"')
		case "apos":
			b.WriteByte('\'')
		default:
			ent, ok := p.dtd.Entity(name)
			if !ok {
				return "", p.errf("undeclared entity &%s;", name)
			}
			switch ent.Kind {
			case EntityInternal:
				b.WriteString(ent.Text)
			case EntityExternal:
				// External data entities stand for themselves (e.g. image
				// files); keep the reference textual.
				b.WriteString(ent.SystemID)
			default:
				return "", p.errf("parameter entity &%s; used in content", name)
			}
		}
		i = j
	}
	return b.String(), nil
}

// defaultedAttrs merges specified attributes with ATTLIST defaults: the
// minimised bare-value form is resolved against enumerated types, #FIXED
// values are enforced and declared defaults filled in.
func defaultedAttrs(decl *ElementDecl, specified []Attr) []Attr {
	var out []Attr
	used := map[string]bool{}
	for _, a := range specified {
		if a.Name == "" {
			// Bare value: find the enumerated attribute admitting it.
			for _, def := range decl.Attrs {
				if def.Type == AttEnum {
					for _, tok := range def.Enum {
						if strings.EqualFold(tok, a.Value) {
							out = append(out, Attr{Name: def.Name, Value: strings.ToLower(a.Value)})
							used[def.Name] = true
						}
					}
				}
			}
			continue
		}
		out = append(out, a)
		used[a.Name] = true
	}
	for _, def := range decl.Attrs {
		if used[def.Name] {
			continue
		}
		switch def.Default {
		case DefaultValue, DefaultFixed:
			out = append(out, Attr{Name: def.Name, Value: def.Value})
		}
	}
	return out
}

// checkAttrs validates specified attributes against the declarations.
func checkAttrs(decl *ElementDecl, attrs []Attr, dtd *DTD) error {
	for _, a := range attrs {
		def, ok := decl.Attr(a.Name)
		if !ok {
			return fmt.Errorf("element %s has no attribute %s", decl.Name, a.Name)
		}
		switch def.Type {
		case AttEnum:
			ok := false
			for _, tok := range def.Enum {
				if strings.EqualFold(tok, a.Value) {
					ok = true
				}
			}
			if !ok {
				return fmt.Errorf("attribute %s of %s must be one of %v, got %q",
					a.Name, decl.Name, def.Enum, a.Value)
			}
		case AttNUMBER:
			if _, err := strconv.Atoi(a.Value); err != nil {
				return fmt.Errorf("attribute %s of %s must be a number, got %q", a.Name, decl.Name, a.Value)
			}
		case AttENTITY:
			if _, ok := dtd.Entity(a.Value); !ok {
				return fmt.Errorf("attribute %s of %s references undeclared entity %q",
					a.Name, decl.Name, a.Value)
			}
		}
		if def.Default == DefaultFixed && a.Value != def.Value {
			return fmt.Errorf("attribute %s of %s is #FIXED %q", a.Name, decl.Name, def.Value)
		}
	}
	for _, def := range decl.Attrs {
		if def.Default != DefaultRequired {
			continue
		}
		found := false
		for _, a := range attrs {
			if a.Name == def.Name {
				found = true
			}
		}
		if !found {
			return fmt.Errorf("element %s is missing required attribute %s", decl.Name, def.Name)
		}
	}
	return nil
}

// resolveIDs indexes ID attributes and verifies IDREF targets.
func (d *Document) resolveIDs() error {
	var dangling []string
	var walk func(e *Element) error
	var checks []func() error
	walk = func(e *Element) error {
		decl, _ := d.DTD.Element(e.Name)
		for _, a := range e.Attrs {
			def, ok := decl.Attr(a.Name)
			if !ok {
				continue
			}
			switch def.Type {
			case AttID:
				if prev, dup := d.IDs[a.Value]; dup && prev != e {
					return fmt.Errorf("sgml: duplicate ID %q", a.Value)
				}
				d.IDs[a.Value] = e
			case AttIDREF:
				v := a.Value
				checks = append(checks, func() error {
					if _, ok := d.IDs[v]; !ok {
						dangling = append(dangling, v)
					}
					return nil
				})
			case AttIDREFS:
				for _, v := range strings.Fields(a.Value) {
					v := v
					checks = append(checks, func() error {
						if _, ok := d.IDs[v]; !ok {
							dangling = append(dangling, v)
						}
						return nil
					})
				}
			}
		}
		for _, c := range e.ChildElements() {
			if err := walk(c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(d.Root); err != nil {
		return err
	}
	for _, c := range checks {
		if err := c(); err != nil {
			return err
		}
	}
	if len(dangling) > 0 {
		return fmt.Errorf("sgml: dangling IDREF(s) %v", dangling)
	}
	return nil
}

// ElementsByName returns every element with the given name in document
// order.
func (d *Document) ElementsByName(name string) []*Element {
	name = strings.ToLower(name)
	var out []*Element
	var walk func(e *Element)
	walk = func(e *Element) {
		if e.Name == name {
			out = append(out, e)
		}
		for _, c := range e.ChildElements() {
			walk(c)
		}
	}
	walk(d.Root)
	return out
}
