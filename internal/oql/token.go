// Package oql implements the extended O₂SQL language of Section 4 of the
// paper: select-from-where queries over the extended O₂ model with the
// contains and near text predicates (Section 4.1), marked union types with
// implicit selectors (Section 4.2), PATH_ and ATT_ variables with the ".."
// sugar (Section 4.3), and position queries over ordered tuples (Section
// 4.4). Queries are parsed, typechecked against the schema, lowered to the
// calculus of Section 5, and evaluated either naively or through the
// algebra.
package oql

import "fmt"

// tokenKind enumerates lexical token kinds.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokPathVar // PATH_x
	tokAttrVar // ATT_x
	tokInt
	tokFloat
	tokString
	tokKeyword

	tokDot    // .
	tokDotDot // ..
	tokArrow  // ->
	tokLBrack // [
	tokRBrack // ]
	tokLParen // (
	tokRParen // )
	tokLBrace // {
	tokRBrace // }
	tokComma  // ,
	tokColon  // :
	tokEq     // =
	tokNe     // !=
	tokLt     // <
	tokLe     // <=
	tokGt     // >
	tokGe     // >=
	tokMinus  // -
	tokPlus   // +
	tokStar   // *
)

// keywords of the language (stored lower-case; matching is
// case-insensitive as in O₂SQL).
var keywords = map[string]bool{
	"select": true, "from": true, "where": true, "in": true,
	"tuple": true, "list": true, "set": true,
	"and": true, "or": true, "not": true,
	"contains": true, "near": true,
	"union": true, "intersect": true, "except": true,
	"exists": true, "forall": true, "element": true,
	"true": true, "false": true, "nil": true,
	"distinct": true,
}

// token is one lexical token with its position.
type token struct {
	kind tokenKind
	text string // identifier/keyword text (lower-cased for keywords), literal source
	pos  int    // byte offset
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of query"
	case tokString:
		return fmt.Sprintf("%q", t.text)
	default:
		return t.text
	}
}
