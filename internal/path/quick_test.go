package path

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"sgmldb/internal/object"
)

// quickPath is a generator for testing/quick: random paths over simple
// member literals (the parseable subset).
type quickPath struct{ P Path }

// Generate implements quick.Generator.
func (quickPath) Generate(r *rand.Rand, size int) reflect.Value {
	n := r.Intn(6)
	steps := make([]Step, 0, n)
	for i := 0; i < n; i++ {
		switch r.Intn(4) {
		case 0:
			names := []string{"title", "a1", "sections", "x_y", "b2"}
			steps = append(steps, Attr(names[r.Intn(len(names))]))
		case 1:
			steps = append(steps, Index(r.Intn(100)))
		case 2:
			steps = append(steps, Deref())
		default:
			var m object.Value
			switch r.Intn(4) {
			case 0:
				m = object.Int(int64(r.Intn(50)))
			case 1:
				m = object.Float(float64(r.Intn(10)) + 0.5)
			case 2:
				m = object.String_("word")
			default:
				m = object.Bool(r.Intn(2) == 0)
			}
			steps = append(steps, Member(m))
		}
	}
	return reflect.ValueOf(quickPath{P: New(steps...)})
}

func TestQuickStringParseRoundTrip(t *testing.T) {
	f := func(qp quickPath) bool {
		parsed, err := Parse(qp.P.String())
		return err == nil && parsed.Equal(qp.P)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickValueRoundTrip(t *testing.T) {
	f := func(qp quickPath) bool {
		back, err := FromValue(qp.P.Value())
		return err == nil && back.Equal(qp.P)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickConcatLength(t *testing.T) {
	f := func(a, b quickPath) bool {
		c := a.P.Concat(b.P)
		if c.Len() != a.P.Len()+b.P.Len() {
			return false
		}
		// Concatenation preserves prefixes and slices recover operands.
		return c.HasPrefix(a.P) &&
			c.Slice(a.P.Len(), c.Len()).Equal(b.P) &&
			c.Slice(0, a.P.Len()).Equal(a.P)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickKeyInjective(t *testing.T) {
	f := func(a, b quickPath) bool {
		return (a.P.Key() == b.P.Key()) == a.P.Equal(b.P)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
