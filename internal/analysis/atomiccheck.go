package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// The atomiccheck analyzer enforces the all-or-nothing rule of the Go
// memory model: once any access to a struct field is atomic, every
// access must be. A mixed regime — atomic.AddUint64(&s.n, 1) on one
// goroutine, s.n++ or a plain read on another — is a data race that
// the race detector only catches when the schedule cooperates, so the
// rule is enforced statically instead.
//
// The census is program-wide (an atomic user in one package commits
// every other package), in two kinds:
//
//   - fields whose type is declared in sync/atomic (atomic.Uint64,
//     atomic.Pointer[T], …): legal uses are method calls on the field
//     and taking its address; anything else reads or writes the raw
//     word behind the API's back.
//   - plain-typed fields whose address is passed to a sync/atomic
//     package function (atomic.LoadUint64(&s.n), …): the only legal
//     use anywhere is exactly that form.
//
// The engine's published-state pointer, the facade metrics counters
// and the WAL/checkpoint sequence numbers all live under this rule.

// AtomicCheckAnalyzer flags plain access to atomically accessed fields.
var AtomicCheckAnalyzer = &Analyzer{
	Name:       "atomiccheck",
	Doc:        "a struct field accessed through sync/atomic must never be accessed plainly",
	RunPackage: runAtomicCheck,
}

// atomicKind says how a field entered the census.
type atomicKind int

const (
	atomicTyped    atomicKind = iota + 1 // field of a sync/atomic type
	atomicViaFuncs                       // plain field addressed into sync/atomic functions
)

// atomicCensus is the program-wide set of atomically accessed fields.
type atomicCensus struct {
	fields map[*types.Var]atomicKind
}

// atomicCensus scans every non-standard package once: field
// declarations of sync/atomic types, and &s.f arguments to sync/atomic
// package functions.
func (prog *Program) atomicCensus() *atomicCensus {
	prog.atomicOnce.Do(func() {
		c := &atomicCensus{fields: map[*types.Var]atomicKind{}}
		for _, pkg := range prog.Packages {
			if pkg.Standard {
				continue
			}
			for _, obj := range pkg.Info.Defs {
				v, ok := obj.(*types.Var)
				if ok && v.IsField() && isAtomicNamed(v.Type()) {
					c.fields[v] = atomicTyped
				}
			}
			for _, f := range pkg.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					fn := calleeOf(pkg.Info, call)
					if fn == nil || !isAtomicPkgFunc(fn) {
						return true
					}
					for _, arg := range call.Args {
						u, ok := ast.Unparen(arg).(*ast.UnaryExpr)
						if !ok || u.Op != token.AND {
							continue
						}
						sel, ok := ast.Unparen(u.X).(*ast.SelectorExpr)
						if !ok {
							continue
						}
						if v, ok := pkg.Info.Uses[sel.Sel].(*types.Var); ok && v.IsField() {
							if c.fields[v] == 0 {
								c.fields[v] = atomicViaFuncs
							}
						}
					}
					return true
				})
			}
		}
		prog.atomics = c
	})
	return prog.atomics
}

// isAtomicNamed matches any named type declared in sync/atomic
// (including instantiations like atomic.Pointer[State]).
func isAtomicNamed(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "sync/atomic"
}

// isAtomicPkgFunc matches package-level functions of sync/atomic
// (AddUint64, LoadPointer, …), not methods of the atomic types.
func isAtomicPkgFunc(fn *types.Func) bool {
	return fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic" &&
		fn.Type().(*types.Signature).Recv() == nil
}

func runAtomicCheck(prog *Program, pkg *Package, report func(Diagnostic)) {
	census := prog.atomicCensus()
	if len(census.fields) == 0 {
		return
	}
	for _, f := range pkg.Files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return false
			}
			if sel, ok := n.(*ast.SelectorExpr); ok {
				if v, ok := pkg.Info.Uses[sel.Sel].(*types.Var); ok {
					if kind, tracked := census.fields[v]; tracked {
						checkAtomicUse(pkg, sel, v, kind, stack, report)
					}
				}
			}
			stack = append(stack, n)
			return true
		})
	}
}

// checkAtomicUse validates one selector of a census field against the
// legal shapes for its kind, using the enclosing node stack.
func checkAtomicUse(pkg *Package, sel *ast.SelectorExpr, v *types.Var,
	kind atomicKind, stack []ast.Node, report func(Diagnostic)) {
	var parent ast.Node
	if len(stack) > 0 {
		parent = stack[len(stack)-1]
	}
	switch kind {
	case atomicTyped:
		// Method call on the field (s.f.Load()) or taking its address.
		if p, ok := parent.(*ast.SelectorExpr); ok && p.X == sel {
			return
		}
		if u, ok := parent.(*ast.UnaryExpr); ok && u.Op == token.AND {
			return
		}
		report(Diagnostic{Pos: sel.Sel.Pos(), Message: fmt.Sprintf(
			"field %s has a sync/atomic type: access it only through its atomic methods", v.Name())})
	case atomicViaFuncs:
		// The one legal shape: &s.f as an argument of a sync/atomic call.
		if u, ok := parent.(*ast.UnaryExpr); ok && u.Op == token.AND && len(stack) >= 2 {
			if call, ok := stack[len(stack)-2].(*ast.CallExpr); ok {
				if fn := calleeOf(pkg.Info, call); fn != nil && isAtomicPkgFunc(fn) {
					for _, arg := range call.Args {
						if arg == u {
							return
						}
					}
				}
			}
		}
		report(Diagnostic{Pos: sel.Sel.Pos(), Message: fmt.Sprintf(
			"field %s is accessed via sync/atomic elsewhere: a plain access here is a data race", v.Name())})
	}
}
