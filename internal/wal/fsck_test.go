package wal

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"sgmldb/internal/text"
)

// seedDir builds a data directory with a checkpoint at seq 2 and log
// records 3..4, the shape a live primary leaves behind.
func seedDir(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	l, _, _ := mustOpen(t, dir)
	for _, r := range sampleRecords() {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := WriteCheckpoint(dir, &Checkpoint{Seq: 2, Epoch: 1, DTD: "d", Inst: checkpointInstance(t), Index: text.NewIndex()}); err != nil {
		t.Fatal(err)
	}
	if err := l.TruncatePrefix(2); err != nil {
		t.Fatal(err)
	}
	l.Close()
	return dir
}

func TestFsckCleanDirectory(t *testing.T) {
	dir := seedDir(t)
	rep, err := Fsck(dir, false)
	if err != nil {
		t.Fatalf("Fsck: %v", err)
	}
	if !rep.Clean() || rep.Repaired {
		t.Fatalf("clean directory reported %+v", rep)
	}
	if rep.Frames != 2 || rep.LastSeq != 4 || rep.CheckpointSeq != 2 || rep.Checkpoints != 1 {
		t.Fatalf("report = %+v, want 2 frames to seq 4 over a seq-2 checkpoint", rep)
	}
}

func TestFsckTornTailVerifyThenRepair(t *testing.T) {
	dir := seedDir(t)
	path := filepath.Join(dir, logName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	// Verify: reports the tear, does not touch the file.
	rep, err := Fsck(dir, false)
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	if !rep.TornTail || rep.Repaired || rep.Frames != 1 || rep.LastSeq != 3 {
		t.Fatalf("verify report = %+v, want a torn tail after the seq-3 frame", rep)
	}
	if after, _ := os.ReadFile(path); len(after) != len(data)-3 {
		t.Fatal("verify modified the log")
	}

	// Repair: truncates on the last good edge; a second pass is clean and
	// recovery replays without complaint.
	rep, err = Fsck(dir, true)
	if err != nil || !rep.Repaired || !rep.TornTail {
		t.Fatalf("repair = %+v, %v", rep, err)
	}
	rep, err = Fsck(dir, false)
	if err != nil || !rep.Clean() {
		t.Fatalf("post-repair verify = %+v, %v", rep, err)
	}
	l, ck, tail, err := Open(dir)
	if err != nil || ck == nil || len(tail) != 1 || tail[0].Seq != 3 {
		t.Fatalf("recovery after repair: ck=%v tail=%v err=%v", ck, tail, err)
	}
	l.Close()
}

func TestFsckCorruptionIsNotRepaired(t *testing.T) {
	dir := seedDir(t)
	path := filepath.Join(dir, logName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(logMagic)+frameHeaderSize+2] ^= 0xff // first record's payload
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	for _, repair := range []bool{false, true} {
		if _, err := Fsck(dir, repair); !errors.Is(err, ErrCorruptLog) {
			t.Fatalf("Fsck(repair=%v) on mid-log corruption = %v, want ErrCorruptLog", repair, err)
		}
	}
	if after, _ := os.ReadFile(path); len(after) != len(data) {
		t.Fatal("repair modified a corrupt log")
	}
}

func TestFsckStraysAndBadCheckpoints(t *testing.T) {
	dir := seedDir(t)
	if err := os.WriteFile(filepath.Join(dir, "checkpoint.tmp-123"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, checkpointName(9)), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := Fsck(dir, false)
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	if rep.StrayTemps != 1 || rep.BadCheckpoints != 1 || rep.CheckpointSeq != 2 {
		t.Fatalf("report = %+v, want 1 stray, 1 bad checkpoint, floor at the valid seq-2 file", rep)
	}
	rep, err = Fsck(dir, true)
	if err != nil || !rep.Repaired {
		t.Fatalf("repair = %+v, %v", rep, err)
	}
	if _, err := os.Stat(filepath.Join(dir, checkpointName(9))); !os.IsNotExist(err) {
		t.Error("repair left the undecodable checkpoint")
	}
	rep, err = Fsck(dir, false)
	if err != nil || !rep.Clean() {
		t.Fatalf("post-repair verify = %+v, %v", rep, err)
	}
}

func TestScrubHappyPathAndCorruption(t *testing.T) {
	dir := seedDir(t)
	l, _, _ := mustOpen(t, dir)
	frames, lastSeq, err := l.Scrub()
	if err != nil || frames != 2 || lastSeq != 4 {
		t.Fatalf("Scrub = (%d, %d, %v), want 2 frames to seq 4", frames, lastSeq, err)
	}
	newest, valid, bad, err := ScrubCheckpoints(dir)
	if err != nil || newest != 2 || valid != 1 || bad != 0 {
		t.Fatalf("ScrubCheckpoints = (%d, %d, %d, %v)", newest, valid, bad, err)
	}
	l.Close()

	// Flip a committed byte behind a live log's back (bit rot): the next
	// scrub must report corruption even though the in-memory state looks
	// fine. os.WriteFile rewrites the same inode, so the open handle sees
	// the damage.
	l2, _, _ := mustOpen(t, dir)
	defer l2.Close()
	path := filepath.Join(dir, logName)
	data, _ := os.ReadFile(path)
	data[len(logMagic)+frameHeaderSize+1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := l2.Scrub(); !errors.Is(err, ErrCorruptLog) {
		t.Fatalf("Scrub on bit rot = %v, want ErrCorruptLog", err)
	}
}
