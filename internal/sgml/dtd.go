package sgml

import (
	"fmt"
	"strings"
)

// AttType is the declared type of an SGML attribute.
type AttType int

// The attribute types the paper's examples use (Figure 1): CDATA free
// text, ID/IDREF(S) cross references, NMTOKEN(S) name tokens, ENTITY
// references to declared entities, NUMBER, NAME, and enumerated
// name-token groups.
const (
	AttCDATA AttType = iota
	AttID
	AttIDREF
	AttIDREFS
	AttNMTOKEN
	AttNMTOKENS
	AttENTITY
	AttNUMBER
	AttNAME
	AttEnum
)

// String renders the attribute type keyword.
func (t AttType) String() string {
	switch t {
	case AttCDATA:
		return "CDATA"
	case AttID:
		return "ID"
	case AttIDREF:
		return "IDREF"
	case AttIDREFS:
		return "IDREFS"
	case AttNMTOKEN:
		return "NMTOKEN"
	case AttNMTOKENS:
		return "NMTOKENS"
	case AttENTITY:
		return "ENTITY"
	case AttNUMBER:
		return "NUMBER"
	case AttNAME:
		return "NAME"
	case AttEnum:
		return "enumeration"
	default:
		return fmt.Sprintf("AttType(%d)", int(t))
	}
}

// DefaultKind says how an attribute defaults when omitted in an instance.
type DefaultKind int

// Attribute default kinds: #REQUIRED must be given, #IMPLIED may be
// absent, #FIXED always has the declared value, DefaultValue supplies a
// literal (Figure 1's sizex NMTOKEN "16cm").
const (
	DefaultRequired DefaultKind = iota
	DefaultImplied
	DefaultFixed
	DefaultValue
)

// String renders the default kind.
func (k DefaultKind) String() string {
	switch k {
	case DefaultRequired:
		return "#REQUIRED"
	case DefaultImplied:
		return "#IMPLIED"
	case DefaultFixed:
		return "#FIXED"
	case DefaultValue:
		return "default"
	default:
		return fmt.Sprintf("DefaultKind(%d)", int(k))
	}
}

// AttDef is one attribute definition from an ATTLIST declaration.
type AttDef struct {
	Name    string
	Type    AttType
	Enum    []string // for AttEnum: the allowed name tokens
	Default DefaultKind
	Value   string // for DefaultFixed and DefaultValue
}

// ElementDecl is an ELEMENT declaration: name, tag minimisation and
// content model. OmitStart/OmitEnd record the "- O" minimisation field
// ("O" means the tag may be omitted when unambiguous).
type ElementDecl struct {
	Name      string
	OmitStart bool
	OmitEnd   bool
	Content   ContentModel
	Attrs     []AttDef // from ATTLIST declarations, in declaration order
}

// Attr returns the definition of the named attribute, if declared.
func (e *ElementDecl) Attr(name string) (AttDef, bool) {
	for _, a := range e.Attrs {
		if a.Name == name {
			return a, true
		}
	}
	return AttDef{}, false
}

// EntityKind discriminates entity declarations.
type EntityKind int

// Entity kinds: internal text replacement, external SYSTEM data (possibly
// NDATA, i.e. non-SGML data such as Figure 1's image entity), and
// parameter entities (usable inside the DTD).
const (
	EntityInternal EntityKind = iota
	EntityExternal
	EntityParameter
)

// EntityDecl is an ENTITY declaration.
type EntityDecl struct {
	Name     string
	Kind     EntityKind
	Text     string // replacement text for internal/parameter entities
	SystemID string // for external entities
	Notation string // NDATA notation name, when given
}

// DTD is a parsed document type definition: the grammar a document
// instance must satisfy.
type DTD struct {
	Name     string // document element name, lower-cased
	elements map[string]*ElementDecl
	order    []string // element declaration order
	entities map[string]*EntityDecl
	entOrder []string
}

// Element returns the declaration of the named element (case-insensitive).
func (d *DTD) Element(name string) (*ElementDecl, bool) {
	e, ok := d.elements[strings.ToLower(name)]
	return e, ok
}

// Elements returns element names in declaration order.
func (d *DTD) Elements() []string {
	out := make([]string, len(d.order))
	copy(out, d.order)
	return out
}

// Entity returns the named entity declaration.
func (d *DTD) Entity(name string) (*EntityDecl, bool) {
	e, ok := d.entities[name]
	return e, ok
}

// Entities returns entity names in declaration order.
func (d *DTD) Entities() []string {
	out := make([]string, len(d.entOrder))
	copy(out, d.entOrder)
	return out
}

// Check validates the DTD: every element referenced in a content model
// must be declared, and every content model must pass the unambiguity
// check.
func (d *DTD) Check() error {
	for _, name := range d.order {
		e := d.elements[name]
		if err := d.checkRefs(e.Content, name); err != nil {
			return err
		}
		if err := CheckAmbiguity(e.Content, 64); err != nil {
			return fmt.Errorf("sgml: element %s: %w", name, err)
		}
	}
	return nil
}

func (d *DTD) checkRefs(m ContentModel, owner string) error {
	switch x := m.(type) {
	case Name:
		if _, ok := d.elements[x.Elem]; !ok {
			return fmt.Errorf("sgml: element %s refers to undeclared element %s", owner, x.Elem)
		}
	case Seq:
		for _, it := range x.Items {
			if err := d.checkRefs(it, owner); err != nil {
				return err
			}
		}
	case Choice:
		for _, it := range x.Items {
			if err := d.checkRefs(it, owner); err != nil {
				return err
			}
		}
	case And:
		for _, it := range x.Items {
			if err := d.checkRefs(it, owner); err != nil {
				return err
			}
		}
	case Occur:
		return d.checkRefs(x.Item, owner)
	}
	return nil
}

// String renders the DTD back in declaration syntax.
func (d *DTD) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "<!DOCTYPE %s [\n", d.Name)
	for _, name := range d.order {
		e := d.elements[name]
		min := ""
		if e.OmitStart || e.OmitEnd || !e.OmitStart {
			s, en := "-", "-"
			if e.OmitStart {
				s = "O"
			}
			if e.OmitEnd {
				en = "O"
			}
			min = " " + s + " " + en
		}
		model := e.Content.String()
		// Model groups are parenthesised in declaration syntax; declared
		// content keywords (EMPTY, ANY, CDATA) are not.
		if !strings.HasPrefix(model, "(") {
			switch e.Content.(type) {
			case Empty, AnyContent:
			default:
				model = "(" + model + ")"
			}
		}
		fmt.Fprintf(&b, "<!ELEMENT %s%s %s>\n", name, min, model)
		if len(e.Attrs) > 0 {
			fmt.Fprintf(&b, "<!ATTLIST %s", name)
			for _, a := range e.Attrs {
				ty := a.Type.String()
				if a.Type == AttEnum {
					ty = "(" + strings.Join(a.Enum, " | ") + ")"
				}
				def := a.Default.String()
				if a.Default == DefaultValue {
					def = fmt.Sprintf("%q", a.Value)
				} else if a.Default == DefaultFixed {
					def = fmt.Sprintf("#FIXED %q", a.Value)
				}
				fmt.Fprintf(&b, "\n  %s %s %s", a.Name, ty, def)
			}
			b.WriteString(">\n")
		}
	}
	for _, name := range d.entOrder {
		en := d.entities[name]
		switch en.Kind {
		case EntityInternal:
			fmt.Fprintf(&b, "<!ENTITY %s %q>\n", name, en.Text)
		case EntityParameter:
			fmt.Fprintf(&b, "<!ENTITY %% %s %q>\n", name, en.Text)
		case EntityExternal:
			if en.Notation != "" {
				fmt.Fprintf(&b, "<!ENTITY %s SYSTEM %q NDATA %s>\n", name, en.SystemID, en.Notation)
			} else {
				fmt.Fprintf(&b, "<!ENTITY %s SYSTEM %q>\n", name, en.SystemID)
			}
		}
	}
	b.WriteString("]>\n")
	return b.String()
}

// dtdParser is a recursive-descent parser over declaration text.
type dtdParser struct {
	src  string
	pos  int
	dtd  *DTD
	pent map[string]string // parameter entities, for %name; substitution
}

// ParseDTD parses a document type definition. The input is either a full
// <!DOCTYPE name [ ... ]> prologue or the bare sequence of declarations
// (in which case the first declared element is the document element).
func ParseDTD(src string) (*DTD, error) {
	p := &dtdParser{
		src: src,
		dtd: &DTD{
			elements: make(map[string]*ElementDecl),
			entities: make(map[string]*EntityDecl),
		},
		pent: make(map[string]string),
	}
	if err := p.parse(); err != nil {
		return nil, err
	}
	if p.dtd.Name == "" && len(p.dtd.order) > 0 {
		p.dtd.Name = p.dtd.order[0]
	}
	if p.dtd.Name == "" {
		return nil, fmt.Errorf("sgml: empty DTD")
	}
	if err := p.dtd.Check(); err != nil {
		return nil, err
	}
	return p.dtd, nil
}

func (p *dtdParser) errf(format string, args ...any) error {
	line := 1 + strings.Count(p.src[:min(p.pos, len(p.src))], "\n")
	return fmt.Errorf("sgml: dtd line %d: %s", line, fmt.Sprintf(format, args...))
}

func (p *dtdParser) skipSpace() {
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			p.pos++
			continue
		}
		// Comments: <!-- ... --> and in-declaration -- ... --.
		if strings.HasPrefix(p.src[p.pos:], "<!--") {
			end := strings.Index(p.src[p.pos+4:], "-->")
			if end < 0 {
				p.pos = len(p.src)
				return
			}
			p.pos += 4 + end + 3
			continue
		}
		return
	}
}

func (p *dtdParser) eof() bool {
	p.skipSpace()
	return p.pos >= len(p.src)
}

func (p *dtdParser) lit(s string) bool {
	if strings.HasPrefix(p.src[p.pos:], s) {
		p.pos += len(s)
		return true
	}
	return false
}

func (p *dtdParser) litCI(s string) bool {
	if len(p.src)-p.pos < len(s) {
		return false
	}
	if strings.EqualFold(p.src[p.pos:p.pos+len(s)], s) {
		p.pos += len(s)
		return true
	}
	return false
}

func isNameStart(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isNameChar(c byte) bool {
	return isNameStart(c) || c >= '0' && c <= '9' || c == '-' || c == '.' || c == '_'
}

// name reads an SGML name, lower-cased (SGML's default NAMECASE GENERAL YES).
func (p *dtdParser) name() (string, error) {
	p.skipSpace()
	if p.pos >= len(p.src) || !isNameStart(p.src[p.pos]) {
		return "", p.errf("expected a name")
	}
	start := p.pos
	for p.pos < len(p.src) && isNameChar(p.src[p.pos]) {
		p.pos++
	}
	return strings.ToLower(p.src[start:p.pos]), nil
}

// literal reads a quoted literal ("..." or '...').
func (p *dtdParser) literal() (string, error) {
	p.skipSpace()
	if p.pos >= len(p.src) || (p.src[p.pos] != '"' && p.src[p.pos] != '\'') {
		return "", p.errf("expected a quoted literal")
	}
	q := p.src[p.pos]
	p.pos++
	start := p.pos
	for p.pos < len(p.src) && p.src[p.pos] != q {
		p.pos++
	}
	if p.pos >= len(p.src) {
		return "", p.errf("unterminated literal")
	}
	s := p.src[start:p.pos]
	p.pos++
	return s, nil
}

// expandPEs substitutes parameter entity references %name; in s.
func (p *dtdParser) expandPEs(s string) string {
	if !strings.Contains(s, "%") {
		return s
	}
	var b strings.Builder
	i := 0
	for i < len(s) {
		if s[i] == '%' && i+1 < len(s) && isNameStart(s[i+1]) {
			j := i + 1
			for j < len(s) && isNameChar(s[j]) {
				j++
			}
			name := strings.ToLower(s[i+1 : j])
			if j < len(s) && s[j] == ';' {
				j++
			}
			if text, ok := p.pent[name]; ok {
				b.WriteString(text)
				i = j
				continue
			}
		}
		b.WriteByte(s[i])
		i++
	}
	return b.String()
}

func (p *dtdParser) parse() error {
	for !p.eof() {
		p.skipSpace()
		switch {
		case p.litCI("<!DOCTYPE"):
			name, err := p.name()
			if err != nil {
				return err
			}
			p.dtd.Name = name
			p.skipSpace()
			if p.lit("[") {
				continue // declarations follow inline
			}
			return p.errf("expected [ after DOCTYPE name")
		case p.lit("]>") || p.lit("]"):
			p.skipSpace()
			p.lit(">")
			// Anything after the DOCTYPE bracket belongs to the instance;
			// stop here.
			return nil
		case p.litCI("<!ELEMENT"):
			if err := p.parseElement(); err != nil {
				return err
			}
		case p.litCI("<!ATTLIST"):
			if err := p.parseAttlist(); err != nil {
				return err
			}
		case p.litCI("<!ENTITY"):
			if err := p.parseEntity(); err != nil {
				return err
			}
		case p.litCI("<!NOTATION"):
			// Recognised and skipped: notations carry no structure we map.
			if err := p.skipDecl(); err != nil {
				return err
			}
		default:
			return p.errf("unexpected input %q", snippet(p.src[p.pos:]))
		}
	}
	return nil
}

func (p *dtdParser) skipDecl() error {
	for p.pos < len(p.src) && p.src[p.pos] != '>' {
		p.pos++
	}
	if p.pos >= len(p.src) {
		return p.errf("unterminated declaration")
	}
	p.pos++
	return nil
}

// parseElement parses <!ELEMENT name [minim] content>.
// A name group (n1 | n2) declares several elements at once.
func (p *dtdParser) parseElement() error {
	names, err := p.nameOrGroup()
	if err != nil {
		return err
	}
	// Optional tag minimisation: two of "-"/"O".
	omitStart, omitEnd := false, false
	p.skipSpace()
	if p.pos < len(p.src) && (p.src[p.pos] == '-' || p.src[p.pos] == 'O' || p.src[p.pos] == 'o') {
		// Look ahead: minimisation is "X Y" where X,Y ∈ {-, O}.
		save := p.pos
		first := p.src[p.pos]
		p.pos++
		p.skipSpace()
		if p.pos < len(p.src) && (p.src[p.pos] == '-' || p.src[p.pos] == 'O' || p.src[p.pos] == 'o') {
			second := p.src[p.pos]
			p.pos++
			omitStart = first == 'O' || first == 'o'
			omitEnd = second == 'O' || second == 'o'
		} else {
			p.pos = save
		}
	}
	model, err := p.contentModel()
	if err != nil {
		return err
	}
	p.skipSpace()
	if !p.lit(">") {
		return p.errf("expected > at end of ELEMENT declaration")
	}
	for _, n := range names {
		if _, dup := p.dtd.elements[n]; dup {
			return p.errf("element %s declared twice", n)
		}
		decl := &ElementDecl{Name: n, OmitStart: omitStart, OmitEnd: omitEnd, Content: model}
		// EMPTY elements always omit their end tag.
		if _, empty := model.(Empty); empty {
			decl.OmitEnd = true
		}
		p.dtd.elements[n] = decl
		p.dtd.order = append(p.dtd.order, n)
	}
	return nil
}

// nameOrGroup reads a single name or a (n1 | n2 | ...) name group.
func (p *dtdParser) nameOrGroup() ([]string, error) {
	p.skipSpace()
	if p.lit("(") {
		var names []string
		for {
			n, err := p.name()
			if err != nil {
				return nil, err
			}
			names = append(names, n)
			p.skipSpace()
			if p.lit("|") {
				continue
			}
			if p.lit(")") {
				return names, nil
			}
			return nil, p.errf("expected | or ) in name group")
		}
	}
	n, err := p.name()
	if err != nil {
		return nil, err
	}
	return []string{n}, nil
}

// contentModel parses a declared content keyword or a model group.
func (p *dtdParser) contentModel() (ContentModel, error) {
	p.skipSpace()
	switch {
	case p.litCI("EMPTY"):
		return Empty{}, nil
	case p.litCI("ANY"):
		return AnyContent{}, nil
	case p.litCI("CDATA"), p.litCI("RCDATA"):
		// Declared character data content: treat as PCDATA for structure.
		return PCData{}, nil
	}
	if p.pos < len(p.src) && p.src[p.pos] == '%' {
		// Parameter entity holding a model.
		p.pos++
		n, err := p.name()
		if err != nil {
			return nil, err
		}
		p.lit(";")
		text, ok := p.pent[n]
		if !ok {
			return nil, p.errf("undeclared parameter entity %%%s;", n)
		}
		sub := &dtdParser{src: text, dtd: p.dtd, pent: p.pent}
		return sub.contentModel()
	}
	if !p.lit("(") {
		return nil, p.errf("expected a content model")
	}
	return p.modelGroup()
}

// modelGroup parses the inside of a "(...)" group, including the closing
// parenthesis and a trailing occurrence indicator.
func (p *dtdParser) modelGroup() (ContentModel, error) {
	var items []ContentModel
	var connector byte // ',', '|', '&' — fixed by first use
	for {
		it, err := p.modelItem()
		if err != nil {
			return nil, err
		}
		items = append(items, it)
		p.skipSpace()
		if p.pos >= len(p.src) {
			return nil, p.errf("unterminated model group")
		}
		c := p.src[p.pos]
		switch c {
		case ',', '|', '&':
			if connector == 0 {
				connector = c
			} else if connector != c {
				return nil, p.errf("mixed connectors %q and %q in one group", string(connector), string(c))
			}
			p.pos++
			continue
		case ')':
			p.pos++
			var m ContentModel
			switch {
			case len(items) == 1:
				m = items[0]
			case connector == '|':
				m = Choice{Items: items}
			case connector == '&':
				m = And{Items: items}
			default:
				m = Seq{Items: items}
			}
			return p.occurrence(m), nil
		default:
			return nil, p.errf("expected connector or ) in model group, found %q", string(c))
		}
	}
}

// modelItem parses one member of a group: a name, #PCDATA, or a nested
// group, with an optional occurrence indicator.
func (p *dtdParser) modelItem() (ContentModel, error) {
	p.skipSpace()
	if p.lit("(") {
		return p.modelGroup()
	}
	if p.litCI("#PCDATA") {
		return p.occurrence(PCData{}), nil
	}
	if p.pos < len(p.src) && p.src[p.pos] == '%' {
		p.pos++
		n, err := p.name()
		if err != nil {
			return nil, err
		}
		p.lit(";")
		text, ok := p.pent[n]
		if !ok {
			return nil, p.errf("undeclared parameter entity %%%s;", n)
		}
		sub := &dtdParser{src: "(" + text + ")", dtd: p.dtd, pent: p.pent}
		sub.lit("(")
		return sub.modelGroup()
	}
	n, err := p.name()
	if err != nil {
		return nil, err
	}
	return p.occurrence(Name{Elem: n}), nil
}

// occurrence wraps m with a trailing ?, + or * when present.
func (p *dtdParser) occurrence(m ContentModel) ContentModel {
	if p.pos < len(p.src) {
		switch p.src[p.pos] {
		case '?':
			p.pos++
			return Occur{Item: m, Ind: Opt}
		case '+':
			p.pos++
			return Occur{Item: m, Ind: Plus}
		case '*':
			p.pos++
			return Occur{Item: m, Ind: Rep}
		}
	}
	return m
}

// parseAttlist parses <!ATTLIST name (attname type default)*>.
func (p *dtdParser) parseAttlist() error {
	names, err := p.nameOrGroup()
	if err != nil {
		return err
	}
	var defs []AttDef
	for {
		p.skipSpace()
		if p.lit(">") {
			break
		}
		var def AttDef
		def.Name, err = p.name()
		if err != nil {
			return err
		}
		p.skipSpace()
		switch {
		case p.litCI("CDATA"):
			def.Type = AttCDATA
		case p.litCI("IDREFS"):
			def.Type = AttIDREFS
		case p.litCI("IDREF"):
			def.Type = AttIDREF
		case p.litCI("ID"):
			def.Type = AttID
		case p.litCI("NMTOKENS"):
			def.Type = AttNMTOKENS
		case p.litCI("NMTOKEN"):
			def.Type = AttNMTOKEN
		case p.litCI("ENTITY"):
			def.Type = AttENTITY
		case p.litCI("NUMBER"):
			def.Type = AttNUMBER
		case p.litCI("NAME"):
			def.Type = AttNAME
		case p.lit("("):
			def.Type = AttEnum
			for {
				tok, err := p.nmtoken()
				if err != nil {
					return err
				}
				def.Enum = append(def.Enum, tok)
				p.skipSpace()
				if p.lit("|") {
					continue
				}
				if p.lit(")") {
					break
				}
				return p.errf("expected | or ) in enumeration")
			}
		default:
			return p.errf("unknown attribute type at %q", snippet(p.src[p.pos:]))
		}
		p.skipSpace()
		switch {
		case p.litCI("#REQUIRED"):
			def.Default = DefaultRequired
		case p.litCI("#IMPLIED"):
			def.Default = DefaultImplied
		case p.litCI("#FIXED"):
			def.Default = DefaultFixed
			def.Value, err = p.literal()
			if err != nil {
				return err
			}
		default:
			def.Default = DefaultValue
			if p.pos < len(p.src) && (p.src[p.pos] == '"' || p.src[p.pos] == '\'') {
				def.Value, err = p.literal()
				if err != nil {
					return err
				}
			} else {
				// Unquoted default name token (Figure 1: "draft").
				def.Value, err = p.nmtoken()
				if err != nil {
					return err
				}
			}
		}
		defs = append(defs, def)
	}
	for _, n := range names {
		e, ok := p.dtd.elements[n]
		if !ok {
			return p.errf("ATTLIST for undeclared element %s", n)
		}
		e.Attrs = append(e.Attrs, defs...)
	}
	return nil
}

// nmtoken reads a name token (may start with a digit, unlike a name).
func (p *dtdParser) nmtoken() (string, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) && isNameChar(p.src[p.pos]) {
		p.pos++
	}
	if p.pos == start {
		return "", p.errf("expected a name token")
	}
	return strings.ToLower(p.src[start:p.pos]), nil
}

// parseEntity parses <!ENTITY [%] name (text | SYSTEM "sysid" [NDATA n])>.
func (p *dtdParser) parseEntity() error {
	p.skipSpace()
	isParam := p.lit("%")
	name, err := p.name()
	if err != nil {
		return err
	}
	p.skipSpace()
	decl := &EntityDecl{Name: name}
	if p.litCI("SYSTEM") {
		decl.Kind = EntityExternal
		decl.SystemID, err = p.literal()
		if err != nil {
			return err
		}
		p.skipSpace()
		if p.litCI("NDATA") {
			// The notation name is optional in the paper's Figure 1
			// (line 16 leaves it blank); accept both forms.
			p.skipSpace()
			if p.pos < len(p.src) && isNameStart(p.src[p.pos]) {
				decl.Notation, err = p.name()
				if err != nil {
					return err
				}
			}
		}
	} else {
		text, err := p.literal()
		if err != nil {
			return err
		}
		decl.Text = p.expandPEs(text)
		if isParam {
			decl.Kind = EntityParameter
			p.pent[name] = decl.Text
		}
	}
	p.skipSpace()
	if !p.lit(">") {
		return p.errf("expected > at end of ENTITY declaration")
	}
	if _, dup := p.dtd.entities[name]; !dup {
		p.dtd.entities[name] = decl
		p.dtd.entOrder = append(p.dtd.entOrder, name)
	}
	return nil
}

func snippet(s string) string {
	s = strings.TrimSpace(s)
	if len(s) > 24 {
		return s[:24] + "…"
	}
	return s
}
