package dtdmap

import (
	"fmt"
	"strconv"
	"strings"

	"sgmldb/internal/faultpoint"
	"sgmldb/internal/object"
	"sgmldb/internal/sgml"
	"sgmldb/internal/store"
)

// Fault-injection sites on the staging path: chaos tests arm these to
// fail a load mid-batch (after some documents are already staged) and at
// the very last step before the batch would succeed, asserting that the
// published instance is untouched either way.
var (
	fpLoadDoc = faultpoint.New("dtdmap/load-doc")
	fpSetRoot = faultpoint.New("dtdmap/set-root")
)

// Loader turns validated document instances into objects and values of the
// mapped schema — the "semantic actions" of Section 3. A Loader may ingest
// many documents into one instance; the document objects accumulate under
// the mapping's persistence root.
//
// Loads are atomic: each Load (or LoadAll batch) builds into a private
// copy-on-write layer over Instance and swings Instance to the layer only
// if the whole load succeeded. A failed load discards the layer, so the
// published instance never sees the partial objects a failed sibling or
// an unresolved IDREF would otherwise leave behind.
type Loader struct {
	Mapping  *Mapping
	Instance *store.Instance
	docs     []object.OID

	// per-document ID bookkeeping
	idTargets   map[string]object.OID   // ID value -> object carrying it
	idReferrers map[string][]object.OID // ID value -> objects referencing it
	idFixups    []fixup
}

type fixup struct {
	obj  object.OID
	attr string
	ids  []string
	list bool
}

// NewLoader creates a loader over a fresh instance of the mapping's
// schema.
func NewLoader(m *Mapping) *Loader {
	return &Loader{Mapping: m, Instance: store.NewInstance(m.Schema)}
}

// Load ingests one parsed document and returns the oid of its document
// object. The persistence root (e.g. Articles) is updated to list every
// loaded document. On error the loader's instance is exactly what it was
// before the call: the half-built objects live only in a discarded
// copy-on-write layer.
func (l *Loader) Load(doc *sgml.Document) (object.OID, error) {
	oids, err := l.LoadAll([]*sgml.Document{doc})
	if err != nil {
		return 0, err
	}
	return oids[0], nil
}

// LoadAll ingests a batch of parsed documents into one copy-on-write
// layer, updating the persistence root once for the whole batch. The
// batch is all-or-nothing: if any document fails, none of them become
// visible and the loader's instance is unchanged.
func (l *Loader) LoadAll(docs []*sgml.Document) ([]object.OID, error) {
	if len(docs) == 0 {
		return nil, nil
	}
	published := l.Instance
	nDocs := len(l.docs)
	l.Instance = published.Begin()
	// rollback restores the pre-batch state and eagerly discards the
	// abandoned staged layer — without the Discard, the dead layer (and
	// every half-built object in it) would stay reachable until the next
	// successful load replaced l.Instance.
	rollback := func() {
		staged := l.Instance
		l.Instance = published
		l.docs = l.docs[:nDocs]
		staged.Discard()
	}
	out := make([]object.OID, 0, len(docs))
	for _, doc := range docs {
		oid, err := l.loadOne(doc)
		if err != nil {
			rollback()
			return nil, err
		}
		out = append(out, oid)
	}
	vals := make([]object.Value, len(l.docs))
	for i, d := range l.docs {
		vals[i] = d
	}
	if err := fpSetRoot.Hit(); err != nil {
		rollback()
		return nil, err
	}
	if err := l.Instance.SetRoot(l.Mapping.RootName, object.NewList(vals...)); err != nil {
		rollback()
		return nil, err
	}
	return out, nil
}

// loadOne builds one document's objects into the current (staged)
// instance and appends its oid to docs; the caller handles rollback.
func (l *Loader) loadOne(doc *sgml.Document) (object.OID, error) {
	if err := fpLoadDoc.Hit(); err != nil {
		return 0, err
	}
	l.idTargets = make(map[string]object.OID)
	l.idReferrers = make(map[string][]object.OID)
	l.idFixups = nil
	oid, err := l.loadElement(doc.Root)
	if err != nil {
		return 0, err
	}
	if err := l.applyFixups(); err != nil {
		return 0, err
	}
	l.docs = append(l.docs, oid)
	return oid, nil
}

// Mark captures the loader's current state so a caller can roll back
// work done after a successful LoadAll. LoadAll rolls its own batch back
// on failure, but a caller that does more work with the staged instance
// before publishing (the facade rebuilds the text index) needs to undo
// the whole load if that later work fails: Mark before LoadAll, Restore
// on failure.
type Mark struct {
	inst  *store.Instance
	nDocs int
}

// Mark records the instance and document list to restore to.
func (l *Loader) Mark() Mark {
	return Mark{inst: l.Instance, nDocs: len(l.docs)}
}

// Restore abandons everything loaded since the mark was taken: the
// staged copy-on-write layer is dropped — and eagerly discarded, so the
// abandoned layer's maps become garbage now rather than at the next
// successful load — and the document list truncated, leaving the loader
// exactly as Mark saw it. If the loader already rolled itself back (a
// failed LoadAll), Restore is a no-op on the instance.
func (l *Loader) Restore(m Mark) {
	if staged := l.Instance; staged != m.inst {
		l.Instance = m.inst
		staged.Discard()
	}
	l.docs = l.docs[:m.nDocs]
}

// Adopt swings the loader onto a recovered instance and document list —
// the checkpoint-recovery path, where the instance comes from a
// serialized snapshot rather than a chain of loads.
func (l *Loader) Adopt(inst *store.Instance, docs []object.OID) {
	l.Instance = inst
	l.docs = append(l.docs[:0], docs...)
}

// Documents returns the oids of the loaded document objects, in load
// order.
func (l *Loader) Documents() []object.OID {
	out := make([]object.OID, len(l.docs))
	copy(out, l.docs)
	return out
}

// loadElement creates the object for one element and, recursively, its
// logical components.
func (l *Loader) loadElement(e *sgml.Element) (object.OID, error) {
	decl, ok := l.Mapping.DTD.Element(e.Name)
	if !ok {
		return 0, fmt.Errorf("dtdmap: element %s not in the mapped DTD", e.Name)
	}
	class := l.Mapping.ClassFor(e.Name)
	attrFields, err := l.attrValues(e, decl)
	if err != nil {
		return 0, err
	}

	var structural []object.Field
	switch decl.Content.(type) {
	case sgml.PCData:
		structural = []object.Field{{Name: "content", Value: object.String_(e.Text())}}
	case sgml.Empty:
		if !fieldPresent(attrFields, "file") {
			structural = []object.Field{{Name: "file", Value: object.Nil{}}}
		}
	case sgml.AnyContent:
		var elems []object.Value
		for _, c := range e.ChildElements() {
			oid, err := l.loadElement(c)
			if err != nil {
				return 0, err
			}
			elems = append(elems, oid)
		}
		structural = []object.Field{{Name: "contents", Value: object.NewList(elems...)}}
	default:
		sh := l.Mapping.shapes[e.Name]
		v, err := l.buildShape(sh, e)
		if err != nil {
			return 0, fmt.Errorf("dtdmap: element %s: %w", e.Name, err)
		}
		// Align the value with the class type layout computed by
		// classTypeFor.
		switch x := v.(type) {
		case *object.Tuple:
			if _, isTuple := sh.(shapeTuple); isTuple {
				for i := 0; i < x.Len(); i++ {
					structural = append(structural, x.At(i))
				}
			} else {
				structural = []object.Field{{Name: fieldNameFor(sh), Value: v}}
			}
		case *object.Union_:
			if len(attrFields) == 0 {
				// The class type is the union itself.
				oid, err := l.newObject(e, class, x, attrFields)
				return oid, err
			}
			structural = []object.Field{{Name: "content", Value: v}}
		default:
			structural = []object.Field{{Name: fieldNameFor(sh), Value: v}}
		}
	}
	fields := append(structural, attrFields...)
	return l.newObject(e, class, object.NewTuple(dedupValueFields(fields)...), nil)
}

// newObject creates the object and records ID bookkeeping.
func (l *Loader) newObject(e *sgml.Element, class string, v object.Value, extra []object.Field) (object.OID, error) {
	if u, ok := v.(*object.Union_); ok && len(extra) > 0 {
		fields := append([]object.Field{{Name: "content", Value: u}}, extra...)
		v = object.NewTuple(dedupValueFields(fields)...)
	}
	oid, err := l.Instance.NewObject(class, v)
	if err != nil {
		return 0, err
	}
	decl, _ := l.Mapping.DTD.Element(e.Name)
	for _, a := range e.Attrs {
		def, ok := decl.Attr(a.Name)
		if !ok {
			continue
		}
		switch def.Type {
		case sgml.AttID:
			l.idTargets[a.Value] = oid
		case sgml.AttIDREF:
			l.idReferrers[a.Value] = append(l.idReferrers[a.Value], oid)
			l.idFixups = append(l.idFixups, fixup{obj: oid, attr: a.Name, ids: []string{a.Value}})
		case sgml.AttIDREFS:
			ids := strings.Fields(a.Value)
			for _, id := range ids {
				l.idReferrers[id] = append(l.idReferrers[id], oid)
			}
			l.idFixups = append(l.idFixups, fixup{obj: oid, attr: a.Name, ids: ids, list: true})
		}
	}
	return oid, nil
}

// applyFixups resolves IDREF attributes to oids and fills ID attributes
// with the lists of referencing objects.
func (l *Loader) applyFixups() error {
	for _, f := range l.idFixups {
		v, _ := l.Instance.Deref(f.obj)
		tup, ok := v.(*object.Tuple)
		if !ok {
			continue
		}
		if f.list {
			oids := make([]object.Value, 0, len(f.ids))
			for _, id := range f.ids {
				target, ok := l.idTargets[id]
				if !ok {
					return fmt.Errorf("dtdmap: unresolved IDREF %q", id)
				}
				oids = append(oids, target)
			}
			if err := l.Instance.SetValue(f.obj, tup.With(f.attr, object.NewList(oids...))); err != nil {
				return err
			}
		} else {
			target, ok := l.idTargets[f.ids[0]]
			if !ok {
				return fmt.Errorf("dtdmap: unresolved IDREF %q", f.ids[0])
			}
			if err := l.Instance.SetValue(f.obj, tup.With(f.attr, target)); err != nil {
				return err
			}
		}
	}
	// ID attributes: the list of referencing objects.
	for id, target := range l.idTargets {
		v, _ := l.Instance.Deref(target)
		tup, ok := v.(*object.Tuple)
		if !ok {
			continue
		}
		attr := l.idAttrName(target)
		if attr == "" {
			continue
		}
		refs := l.idReferrers[id]
		vals := make([]object.Value, len(refs))
		for i, r := range refs {
			vals[i] = r
		}
		if err := l.Instance.SetValue(target, tup.With(attr, object.NewList(vals...))); err != nil {
			return err
		}
	}
	return nil
}

// idAttrName finds the declared ID attribute of an object's element.
func (l *Loader) idAttrName(oid object.OID) string {
	class, _ := l.Instance.ClassOf(oid)
	elem := l.Mapping.ElementFor(class)
	if elem == "" {
		return ""
	}
	decl, _ := l.Mapping.DTD.Element(elem)
	for _, a := range decl.Attrs {
		if a.Type == sgml.AttID {
			return a.Name
		}
	}
	return ""
}

// attrValues builds the private attribute fields for an element.
func (l *Loader) attrValues(e *sgml.Element, decl *sgml.ElementDecl) ([]object.Field, error) {
	var out []object.Field
	for _, def := range decl.Attrs {
		given, ok := e.Attr(def.Name)
		var v object.Value = object.Nil{}
		if ok {
			switch def.Type {
			case sgml.AttNUMBER:
				n, err := strconv.Atoi(given)
				if err != nil {
					return nil, fmt.Errorf("dtdmap: attribute %s: %w", def.Name, err)
				}
				v = object.Int(n)
			case sgml.AttID, sgml.AttIDREFS:
				v = object.NewList() // filled by fixups
			case sgml.AttIDREF:
				v = object.Nil{} // filled by fixups
			default:
				v = object.String_(given)
			}
		} else if def.Type == sgml.AttID {
			v = object.NewList()
		}
		out = append(out, object.Field{Name: def.Name, Value: v})
	}
	return out, nil
}

// buildShape matches an element's children against the compiled shape and
// builds the corresponding value, creating objects for child elements. The
// match runs twice: a dry pass that only verifies structure (so that
// discarded union alternatives create no objects), then an executing pass
// along the same, deterministic path.
func (l *Loader) buildShape(sh shape, e *sgml.Element) (object.Value, error) {
	nodes := contentNodes(e)
	if _, rest, err := l.match(sh, nodes, false); err != nil {
		return nil, err
	} else if len(rest) > 0 {
		return nil, fmt.Errorf("unmatched content starting at %s", nodeName(rest[0]))
	}
	v, _, err := l.match(sh, nodes, true)
	return v, err
}

// contentNodes returns the element's significant content: child elements
// and non-blank text runs.
func contentNodes(e *sgml.Element) []sgml.Node {
	var out []sgml.Node
	for _, c := range e.Children {
		switch x := c.(type) {
		case sgml.Text:
			if strings.TrimSpace(string(x)) != "" {
				out = append(out, x)
			}
		case *sgml.Element:
			out = append(out, x)
		}
	}
	return out
}

func nodeName(n sgml.Node) string {
	switch x := n.(type) {
	case sgml.Text:
		return "#PCDATA"
	case *sgml.Element:
		return x.Name
	}
	return "?"
}

// match consumes nodes against a shape, returning the built value and the
// unconsumed suffix. With exec false the match is a dry run: it verifies
// structure and computes the consumption without creating any objects
// (the returned value is nil). With exec true it builds the value; every
// decision point (greedy lists, union alternative selection) is
// deterministic, so an exec pass that follows a successful dry pass takes
// the identical path.
func (l *Loader) match(sh shape, nodes []sgml.Node, exec bool) (object.Value, []sgml.Node, error) {
	switch x := sh.(type) {
	case shapeElem:
		if len(nodes) == 0 {
			return nil, nodes, fmt.Errorf("expected element %s, found end of content", x.elem)
		}
		el, ok := nodes[0].(*sgml.Element)
		if !ok || el.Name != x.elem {
			return nil, nodes, fmt.Errorf("expected element %s, found %s", x.elem, nodeName(nodes[0]))
		}
		if !exec {
			return nil, nodes[1:], nil
		}
		oid, err := l.loadElement(el)
		if err != nil {
			return nil, nodes, err
		}
		return oid, nodes[1:], nil
	case shapePCData:
		if len(nodes) == 0 {
			return nil, nodes, fmt.Errorf("expected character data, found end of content")
		}
		txt, ok := nodes[0].(sgml.Text)
		if !ok {
			return nil, nodes, fmt.Errorf("expected character data, found %s", nodeName(nodes[0]))
		}
		if !exec {
			return nil, nodes[1:], nil
		}
		oid, err := l.Instance.NewObject(TextClass, object.NewTuple(
			object.Field{Name: "content", Value: object.String_(strings.TrimSpace(string(txt)))}))
		if err != nil {
			return nil, nodes, err
		}
		return oid, nodes[1:], nil
	case shapeOpt:
		if _, rest, err := l.match(x.inner, nodes, false); err == nil {
			if !exec {
				return nil, rest, nil
			}
			v, rest, err := l.match(x.inner, nodes, true)
			return v, rest, err
		}
		if !exec {
			return nil, nodes, nil
		}
		return object.Nil{}, nodes, nil
	case shapeList:
		var elems []object.Value
		rest := nodes
		n := 0
		for {
			if _, r, err := l.match(x.inner, rest, false); err == nil && len(r) < len(rest) {
				if exec {
					v, _, err := l.match(x.inner, rest, true)
					if err != nil {
						return nil, nodes, err
					}
					elems = append(elems, v)
				}
				rest = r
				n++
				continue
			}
			break
		}
		if x.required && n == 0 {
			return nil, nodes, fmt.Errorf("expected at least one %s", describeShape(x.inner))
		}
		if !exec {
			return nil, rest, nil
		}
		return object.NewList(elems...), rest, nil
	case shapeTuple:
		fields := make([]object.Field, 0, len(x.fields))
		rest := nodes
		for _, f := range x.fields {
			v, r, err := l.match(f.inner, rest, exec)
			if err != nil {
				return nil, nodes, err
			}
			if exec {
				fields = append(fields, object.Field{Name: f.name, Value: v})
			}
			rest = r
		}
		if !exec {
			return nil, rest, nil
		}
		return object.NewTuple(fields...), rest, nil
	case shapeUnion:
		// Dry-run each alternative; the one that consumes the most content
		// wins, with earlier (declared-first) alternatives preferred on a
		// tie — the paper's a1 branch.
		bestIdx := -1
		var bestRest []sgml.Node
		for i, alt := range x.alts {
			_, r, err := l.match(alt.inner, nodes, false)
			if err != nil {
				continue
			}
			if bestIdx < 0 || len(r) < len(bestRest) {
				bestIdx = i
				bestRest = r
			}
		}
		if bestIdx < 0 {
			return nil, nodes, fmt.Errorf("no union alternative matches content starting at %s",
				nodeNameOrEnd(nodes))
		}
		if !exec {
			return nil, bestRest, nil
		}
		alt := x.alts[bestIdx]
		v, rest, err := l.match(alt.inner, nodes, true)
		if err != nil {
			return nil, nodes, err
		}
		return object.NewUnion(alt.marker, v), rest, nil
	default:
		return nil, nodes, fmt.Errorf("dtdmap: unsupported shape %T", sh)
	}
}

func nodeNameOrEnd(nodes []sgml.Node) string {
	if len(nodes) == 0 {
		return "end of content"
	}
	return nodeName(nodes[0])
}

func describeShape(sh shape) string {
	switch x := sh.(type) {
	case shapeElem:
		return x.elem
	case shapePCData:
		return "#PCDATA"
	default:
		return "group"
	}
}

// fieldNameFor names the single structural field when the class type wraps
// a non-tuple shape.
func fieldNameFor(sh shape) string {
	if n := sh.suggestion(); n != "" {
		return n
	}
	switch sh.(type) {
	case shapeList:
		return "items"
	default:
		return "content"
	}
}

func fieldPresent(fields []object.Field, name string) bool {
	for _, f := range fields {
		if f.Name == name {
			return true
		}
	}
	return false
}

// dedupValueFields mirrors dedupFields for values.
func dedupValueFields(fields []object.Field) []object.Field {
	used := map[string]int{}
	out := make([]object.Field, len(fields))
	for i, f := range fields {
		used[f.Name]++
		if used[f.Name] > 1 {
			f.Name = fmt.Sprintf("%s%d", f.Name, used[f.Name])
		}
		out[i] = f
	}
	return out
}
