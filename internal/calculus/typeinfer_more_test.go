package calculus

import (
	"testing"

	"sgmldb/internal/object"
	"sgmldb/internal/store"
)

// setEnv builds a schema with set-valued attributes and an Any reference
// for the remaining inference branches.
func setEnv(t *testing.T) *Env {
	t.Helper()
	s := store.NewSchema()
	if err := s.AddClass("Doc", object.TupleOf(
		object.TField{Name: "tags", Type: object.SetOf(object.StringType)},
		object.TField{Name: "ref", Type: object.Any},
	)); err != nil {
		t.Fatal(err)
	}
	if err := s.AddRoot("D", object.Class("Doc")); err != nil {
		t.Fatal(err)
	}
	in := store.NewInstance(s)
	o, err := in.NewObject("Doc", object.NewTuple(
		object.Field{Name: "tags", Value: object.NewSet(object.String_("x"), object.String_("y"))},
		object.Field{Name: "ref", Value: object.Nil{}},
	))
	if err != nil {
		t.Fatal(err)
	}
	if err := in.SetRoot("D", o); err != nil {
		t.Fatal(err)
	}
	return NewEnv(in)
}

func TestInferMemberAndDerefTypes(t *testing.T) {
	e := setEnv(t)
	schema := e.Inst.Schema()
	q := &Query{
		Head: []VarDecl{{Name: "X", Sort: SortData}},
		Body: PathAtom{Base: NameRef{Name: "D"},
			Path: P(ElemDeref{}, ElemAttr{A: AttrName{Name: "tags"}},
				ElemMember{T: Var{Name: "X"}})},
	}
	ti, err := InferTypes(schema, q)
	if err != nil {
		t.Fatal(err)
	}
	if ts := ti.Data["X"]; len(ts) != 1 || !object.TypeEqual(ts[0], object.StringType) {
		t.Errorf("member type = %v", ts)
	}
	// Any-typed references dereference into every class.
	q2 := &Query{
		Head: []VarDecl{{Name: "Y", Sort: SortData}},
		Body: PathAtom{Base: NameRef{Name: "D"},
			Path: P(ElemDeref{}, ElemAttr{A: AttrName{Name: "ref"}},
				ElemDeref{}, ElemBind{X: "Y"})},
	}
	ti2, err := InferTypes(schema, q2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ti2.Data["Y"]) == 0 {
		t.Error("deref through any must infer class value types")
	}
	// In/Eq restriction sources.
	q3 := &Query{
		Head: []VarDecl{{Name: "Z", Sort: SortData}},
		Body: In{L: Var{Name: "Z"},
			R: PathApply{Base: NameRef{Name: "D"},
				Path: P(ElemAttr{A: AttrName{Name: "tags"}})}},
	}
	ti3, err := InferTypes(schema, q3)
	if err != nil {
		t.Fatal(err)
	}
	// The In rule only sees the term's type when it is directly typeable;
	// PathApply is dynamic, so no type is inferred — which is fine (nil =
	// unknown), and must not error.
	_ = ti3
	// Or / Not / Forall walk both sides without error.
	q4 := &Query{
		Head: []VarDecl{{Name: "W", Sort: SortData}},
		Body: And{
			L: Or{
				L: Eq{L: Var{Name: "W"}, R: Str("a")},
				R: Eq{L: Var{Name: "W"}, R: Str("b")},
			},
			R: Not{F: Eq{L: Var{Name: "W"}, R: Str("c")}},
		},
	}
	ti4, err := InferTypes(schema, q4)
	if err != nil {
		t.Fatal(err)
	}
	if ty, ok := ti4.TypeOf("W"); !ok || !object.TypeEqual(ty, object.StringType) {
		t.Errorf("W type = %v", ty)
	}
	// TypeOf on an unknown variable.
	if _, ok := ti4.TypeOf("nope"); ok {
		t.Error("unknown variable must have no type")
	}
	// UnionOfTypes collapses singletons.
	if !object.TypeEqual(UnionOfTypes([]object.Type{object.IntType, object.IntType}), object.IntType) {
		t.Error("UnionOfTypes singleton")
	}
	u := UnionOfTypes([]object.Type{object.IntType, object.StringType})
	if _, isUnion := u.(object.UnionType); !isUnion {
		t.Errorf("UnionOfTypes = %s", u)
	}
}

func TestRangeRestrictionCorners(t *testing.T) {
	// Eq between two unrestricted complex terms is unsafe.
	if _, ok := restrict(Eq{
		L: ListTerm{Items: []DataTerm{Var{Name: "X"}}},
		R: ListTerm{Items: []DataTerm{Var{Name: "Y"}}},
	}, varSet{}); ok {
		t.Error("complex-complex Eq must be unsafe")
	}
	// Eq binding through a constructed term is unsafe (only bare
	// variables are bound).
	if _, ok := restrict(Eq{
		L: ListTerm{Items: []DataTerm{Var{Name: "X"}}},
		R: Const{V: object.NewList(object.Int(1))},
	}, varSet{}); ok {
		t.Error("constructed-term binding must be unsafe")
	}
	// In with an unrestricted collection is unsafe.
	if _, ok := restrict(In{L: Var{Name: "X"}, R: Var{Name: "C"}}, varSet{}); ok {
		t.Error("In with free collection must be unsafe")
	}
	// ...but safe once the collection is bound.
	got, ok := restrict(In{L: Var{Name: "X"}, R: Var{Name: "C"}}, varSet{"C": true})
	if !ok || !got["X"] {
		t.Errorf("In restriction = %v %v", got, ok)
	}
	// A path atom with a non-variable, unbound index is unsafe.
	if _, ok := restrict(PathAtom{Base: NameRef{Name: "D"},
		Path: P(ElemIndex{I: FuncCall{Name: "length", Args: []Term{Var{Name: "L"}}}})},
		varSet{}); ok {
		t.Error("computed index over unbound variable must be unsafe")
	}
	// Forall whose range cannot restrict the quantified variable.
	bad := Forall{
		Vars:  []VarDecl{{Name: "X", Sort: SortData}},
		Range: Cmp{Op: Lt, L: Var{Name: "X"}, R: Num(3)},
		Then:  TrueF{},
	}
	if _, ok := restrict(bad, varSet{}); ok {
		t.Error("unrestricted forall must be unsafe")
	}
	// An Or whose branches bind different variables restricts only the
	// intersection (nothing), so a query projecting either variable is
	// rejected.
	or := Or{
		L: Eq{L: Var{Name: "X"}, R: Num(1)},
		R: Eq{L: Var{Name: "Y"}, R: Num(2)},
	}
	got2, ok := restrict(or, varSet{})
	if !ok || len(got2) != 0 {
		t.Errorf("asymmetric Or restricts %v", got2)
	}
	if err := CheckQuery(&Query{
		Head: []VarDecl{{Name: "X", Sort: SortData}},
		Body: And{L: or, R: Eq{L: Var{Name: "Y"}, R: Num(2)}},
	}); err == nil {
		t.Error("projecting an intersection-unrestricted variable must fail")
	}
	// Exists over a variable with no range is unsafe.
	ex := Exists{Vars: []VarDecl{{Name: "Z", Sort: SortData}}, Body: TrueF{}}
	if _, ok := restrict(ex, varSet{}); ok {
		t.Error("rangeless Exists must be unsafe")
	}
}

func TestOrderConjunctsReordering(t *testing.T) {
	// The comparison depends on variables produced by the atoms after it
	// in source order; ordering must move it last.
	f := Conj(
		Cmp{Op: Lt, L: Var{Name: "I"}, R: Var{Name: "J"}},
		PathAtom{Base: NameRef{Name: "D"}, Path: P(ElemIndex{I: Var{Name: "I"}})},
		PathAtom{Base: NameRef{Name: "D"}, Path: P(ElemIndex{I: Var{Name: "J"}})},
	)
	order, err := OrderConjuncts(f, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, isCmp := order[len(order)-1].(Cmp); !isCmp {
		t.Errorf("comparison must come last: %v", order)
	}
	// An unorderable conjunction reports the stuck conjuncts.
	_, err = OrderConjuncts(Cmp{Op: Lt, L: Var{Name: "Q"}, R: Num(1)}, nil)
	if err == nil {
		t.Error("stuck conjunct must error")
	}
}
