package sgml

import (
	"os"
	"strings"
	"testing"
)

func loadFigure1(t *testing.T) *DTD {
	t.Helper()
	src, err := os.ReadFile("../../testdata/article.dtd")
	if err != nil {
		t.Fatal(err)
	}
	dtd, err := ParseDTD(string(src))
	if err != nil {
		t.Fatal(err)
	}
	return dtd
}

// TestFigure1DTD reproduces experiment F1: parsing the paper's Figure 1
// DTD and checking every declaration it contains.
func TestFigure1DTD(t *testing.T) {
	dtd := loadFigure1(t)
	if dtd.Name != "article" {
		t.Fatalf("document element = %s", dtd.Name)
	}
	wantElems := []string{"article", "title", "author", "affil", "abstract",
		"section", "subsectn", "body", "figure", "picture", "caption", "paragr", "acknowl"}
	if got := dtd.Elements(); len(got) != len(wantElems) {
		t.Fatalf("elements = %v", got)
	}
	for _, e := range wantElems {
		if _, ok := dtd.Element(e); !ok {
			t.Errorf("element %s missing", e)
		}
	}
	art, _ := dtd.Element("article")
	if got := art.Content.String(); got != "(title, author+, affil, abstract, section+, acknowl)" {
		t.Errorf("article model = %s", got)
	}
	if art.OmitStart || art.OmitEnd {
		t.Error("article tags are not omissible")
	}
	status, ok := art.Attr("status")
	if !ok || status.Type != AttEnum {
		t.Fatal("status attribute")
	}
	if len(status.Enum) != 2 || status.Enum[0] != "final" || status.Enum[1] != "draft" {
		t.Errorf("status enum = %v", status.Enum)
	}
	if status.Default != DefaultValue || status.Value != "draft" {
		t.Errorf("status default = %v %q", status.Default, status.Value)
	}
	title, _ := dtd.Element("title")
	if title.OmitStart || !title.OmitEnd {
		t.Error("title is - O")
	}
	if _, ok := title.Content.(PCData); !ok {
		t.Error("title content is #PCDATA")
	}
	section, _ := dtd.Element("section")
	if got := section.Content.String(); got != "((title, body+) | (title, body*, subsectn+))" {
		t.Errorf("section model = %s", got)
	}
	fig, _ := dtd.Element("figure")
	if got := fig.Content.String(); got != "(picture, caption?)" {
		t.Errorf("figure model = %s", got)
	}
	label, ok := fig.Attr("label")
	if !ok || label.Type != AttID || label.Default != DefaultImplied {
		t.Error("figure label ID #IMPLIED")
	}
	pic, _ := dtd.Element("picture")
	if _, ok := pic.Content.(Empty); !ok {
		t.Error("picture is EMPTY")
	}
	if !pic.OmitEnd {
		t.Error("EMPTY elements always omit the end tag")
	}
	sizex, _ := pic.Attr("sizex")
	if sizex.Type != AttNMTOKEN || sizex.Default != DefaultValue || sizex.Value != "16cm" {
		t.Errorf("sizex = %+v", sizex)
	}
	sizey, _ := pic.Attr("sizey")
	if sizey.Default != DefaultImplied {
		t.Error("sizey #IMPLIED")
	}
	file, _ := pic.Attr("file")
	if file.Type != AttENTITY {
		t.Error("file ENTITY")
	}
	capt, _ := dtd.Element("caption")
	if !capt.OmitStart || !capt.OmitEnd {
		t.Error("caption is O O")
	}
	par, _ := dtd.Element("paragr")
	ref, ok := par.Attr("reflabel")
	if !ok || ref.Type != AttIDREF {
		t.Error("reflabel IDREF")
	}
	ent, ok := dtd.Entity("fig1")
	if !ok || ent.Kind != EntityExternal || ent.SystemID != "/u/christop/SGML/image1" {
		t.Errorf("fig1 entity = %+v", ent)
	}
}

func TestDTDStringRoundTrip(t *testing.T) {
	dtd := loadFigure1(t)
	out := dtd.String()
	dtd2, err := ParseDTD(out)
	if err != nil {
		t.Fatalf("re-parse of rendered DTD failed: %v\n%s", err, out)
	}
	if len(dtd2.Elements()) != len(dtd.Elements()) {
		t.Error("element count changed in round trip")
	}
	for _, name := range dtd.Elements() {
		a, _ := dtd.Element(name)
		b, ok := dtd2.Element(name)
		if !ok {
			t.Errorf("element %s lost", name)
			continue
		}
		if a.Content.String() != b.Content.String() {
			t.Errorf("%s model changed: %s vs %s", name, a.Content, b.Content)
		}
		if a.OmitStart != b.OmitStart || a.OmitEnd != b.OmitEnd {
			t.Errorf("%s minimisation changed", name)
		}
		if len(a.Attrs) != len(b.Attrs) {
			t.Errorf("%s attrs changed", name)
		}
	}
}

func TestDTDWithoutDoctypeWrapper(t *testing.T) {
	dtd, err := ParseDTD(`<!ELEMENT memo - - (para+)> <!ELEMENT para - O (#PCDATA)>`)
	if err != nil {
		t.Fatal(err)
	}
	if dtd.Name != "memo" {
		t.Errorf("first element becomes document element, got %s", dtd.Name)
	}
}

func TestDTDNameGroupDeclarations(t *testing.T) {
	dtd, err := ParseDTD(`
<!ELEMENT doc - - ((a | b)+)>
<!ELEMENT (a | b) - O (#PCDATA)>
<!ATTLIST (a | b) kind CDATA #IMPLIED>`)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []string{"a", "b"} {
		e, ok := dtd.Element(n)
		if !ok {
			t.Fatalf("element %s not declared via name group", n)
		}
		if _, ok := e.Attr("kind"); !ok {
			t.Errorf("attlist by name group missed %s", n)
		}
	}
}

func TestDTDAndConnectorParsing(t *testing.T) {
	dtd, err := ParseDTD(`
<!ELEMENT letter - - (preamble, content)>
<!ELEMENT preamble - O (to & from)>
<!ELEMENT to - O (#PCDATA)>
<!ELEMENT from - O (#PCDATA)>
<!ELEMENT content - O (#PCDATA)>`)
	if err != nil {
		t.Fatal(err)
	}
	pre, _ := dtd.Element("preamble")
	if got := pre.Content.String(); got != "(to & from)" {
		t.Errorf("preamble model = %s", got)
	}
}

func TestDTDParameterEntities(t *testing.T) {
	dtd, err := ParseDTD(`
<!ENTITY % inline "(em | tt)">
<!ELEMENT doc - - ((%inline;)*)>
<!ELEMENT em - - (#PCDATA)>
<!ELEMENT tt - - (#PCDATA)>`)
	if err != nil {
		t.Fatal(err)
	}
	doc, _ := dtd.Element("doc")
	if !strings.Contains(doc.Content.String(), "em") || !strings.Contains(doc.Content.String(), "tt") {
		t.Errorf("parameter entity not expanded: %s", doc.Content)
	}
}

func TestDTDErrors(t *testing.T) {
	cases := []string{
		``,                     // empty
		`<!ELEMENT a - - (b)>`, // undeclared reference
		`<!ELEMENT a - - (#PCDATA)> <!ELEMENT a - - (#PCDATA)>`, // dup
		`<!ELEMENT a - - (b,)>`,                                 // dangling connector
		`<!ELEMENT a - - (b | c, d)>`,                           // mixed connectors
		`<!ELEMENT a - - (#PCDATA)`,                             // missing >
		`<!ATTLIST ghost x CDATA #IMPLIED>`,                     // attlist without element
		`<!ELEMENT a - - (%nope;)>`,                             // undeclared parameter entity
		`garbage`,                                               // not a declaration
		`<!DOCTYPE d (x)>`,                                      // malformed doctype
	}
	for i, src := range cases {
		if _, err := ParseDTD(src); err == nil {
			t.Errorf("case %d: bad DTD accepted: %q", i, src)
		}
	}
}

func TestDTDComments(t *testing.T) {
	dtd, err := ParseDTD(`
<!-- the memo dtd -->
<!ELEMENT memo - - (para+) >
<!-- paragraphs -->
<!ELEMENT para - O (#PCDATA)>`)
	if err != nil {
		t.Fatal(err)
	}
	if len(dtd.Elements()) != 2 {
		t.Error("comments must be skipped")
	}
}

func TestAttTypeAndDefaultStrings(t *testing.T) {
	types := map[AttType]string{
		AttCDATA: "CDATA", AttID: "ID", AttIDREF: "IDREF", AttIDREFS: "IDREFS",
		AttNMTOKEN: "NMTOKEN", AttNMTOKENS: "NMTOKENS", AttENTITY: "ENTITY",
		AttNUMBER: "NUMBER", AttNAME: "NAME", AttEnum: "enumeration",
	}
	for ty, want := range types {
		if ty.String() != want {
			t.Errorf("%d String = %s", int(ty), ty.String())
		}
	}
	defaults := map[DefaultKind]string{
		DefaultRequired: "#REQUIRED", DefaultImplied: "#IMPLIED",
		DefaultFixed: "#FIXED", DefaultValue: "default",
	}
	for k, want := range defaults {
		if k.String() != want {
			t.Errorf("%d String = %s", int(k), k.String())
		}
	}
}

func TestInternalEntities(t *testing.T) {
	dtd, err := ParseDTD(`
<!ENTITY inria "Institut National de Recherche en Informatique">
<!ELEMENT doc - - (#PCDATA)>`)
	if err != nil {
		t.Fatal(err)
	}
	e, ok := dtd.Entity("inria")
	if !ok || e.Kind != EntityInternal || !strings.Contains(e.Text, "Institut") {
		t.Errorf("entity = %+v", e)
	}
	if len(dtd.Entities()) != 1 {
		t.Error("Entities()")
	}
}
