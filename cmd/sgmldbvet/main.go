// Command sgmldbvet runs sgmldb's domain-specific static analyzers over
// the repository: exhaustive kind switches, context polling in row scans,
// receiver-mutex discipline, error wrapping, and panic reachability. It
// prints findings in the familiar file:line:col format and exits non-zero
// when any survive, so `make ci` can gate on it.
//
// Usage:
//
//	sgmldbvet [-analyzers exhaustive,ctxpoll,…] [packages]
//
// Packages default to ./... and accept any `go list` pattern.
package main

import (
	"flag"
	"fmt"
	"os"

	"sgmldb/internal/analysis"
)

func main() {
	names := flag.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range analysis.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	analyzers, err := analysis.ByName(*names)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	prog, err := analysis.Load(cwd, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	diags := analysis.Run(prog, analyzers)
	for _, d := range diags {
		pos := prog.Fset.Position(d.Pos)
		fmt.Printf("%s: [%s] %s\n", pos, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "sgmldbvet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
