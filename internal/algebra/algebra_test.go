package algebra

import (
	"strings"
	"testing"

	"sgmldb/internal/calculus"
	"sgmldb/internal/object"
	"sgmldb/internal/store"
	"sgmldb/internal/text"
)

// knuthEnv builds the Section 5 Knuth fixture (mirrors the calculus
// package's fixture).
func knuthEnv(t *testing.T) *calculus.Env {
	t.Helper()
	s := store.NewSchema()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(s.AddClass("Chapter", object.TupleOf(
		object.TField{Name: "title", Type: object.StringType},
		object.TField{Name: "review", Type: object.SetOf(object.StringType)},
		object.TField{Name: "author", Type: object.StringType},
	)))
	must(s.AddClass("Volume", object.TupleOf(
		object.TField{Name: "name", Type: object.StringType},
		object.TField{Name: "chapters", Type: object.ListOf(object.Class("Chapter"))},
	)))
	must(s.AddClass("Book", object.TupleOf(
		object.TField{Name: "title", Type: object.StringType},
		object.TField{Name: "volumes", Type: object.ListOf(object.Class("Volume"))},
	)))
	must(s.AddRoot("Knuth_Books", object.Class("Book")))
	in := store.NewInstance(s)
	obj := func(class string, v object.Value) object.OID {
		o, err := in.NewObject(class, v)
		if err != nil {
			t.Fatal(err)
		}
		return o
	}
	ch := func(title, author string, reviews ...string) object.OID {
		rv := make([]object.Value, len(reviews))
		for i, r := range reviews {
			rv[i] = object.String_(r)
		}
		return obj("Chapter", object.NewTuple(
			object.Field{Name: "title", Value: object.String_(title)},
			object.Field{Name: "review", Value: object.NewSet(rv...)},
			object.Field{Name: "author", Value: object.String_(author)},
		))
	}
	c1 := ch("Basic Concepts", "Knuth", "D. Scott")
	c2 := ch("Random Numbers", "Jo", "R. Floyd")
	v1 := obj("Volume", object.NewTuple(
		object.Field{Name: "name", Value: object.String_("Fundamental Algorithms")},
		object.Field{Name: "chapters", Value: object.NewList(c1, c2)},
	))
	book := obj("Book", object.NewTuple(
		object.Field{Name: "title", Value: object.String_("TAOCP")},
		object.Field{Name: "volumes", Value: object.NewList(v1)},
	))
	must(in.SetRoot("Knuth_Books", book))
	return calculus.NewEnv(in)
}

// assertEquivalent runs q through the naive evaluator and the algebra and
// compares the result sets.
func assertEquivalent(t *testing.T, env *calculus.Env, q *calculus.Query, opts Options) *Plan {
	t.Helper()
	naive, err := env.Eval(q)
	if err != nil {
		t.Fatalf("naive: %v", err)
	}
	plan, err := Translate(env, q, opts)
	if err != nil {
		t.Fatalf("translate: %v", err)
	}
	ctx := NewCtx(env)
	ctx.Index = opts.Index
	got, err := plan.Run(ctx)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	ns := naive.ToSet()
	gs := got.ToSet()
	if !object.Equal(ns, gs) {
		t.Fatalf("algebra result differs for %s:\nnaive   %s\nalgebra %s\nplan:\n%s",
			q, ns, gs, plan.Explain())
	}
	return plan
}

func TestEquivalenceAttributeOfJo(t *testing.T) {
	env := knuthEnv(t)
	q := &calculus.Query{
		Head: []calculus.VarDecl{{Name: "A", Sort: calculus.SortAttr}},
		Body: calculus.Exists{
			Vars: []calculus.VarDecl{{Name: "P", Sort: calculus.SortPath}, {Name: "X", Sort: calculus.SortData}},
			Body: calculus.And{
				L: calculus.PathAtom{Base: calculus.NameRef{Name: "Knuth_Books"},
					Path: calculus.P(calculus.ElemVar{Name: "P"},
						calculus.ElemAttr{A: calculus.AttrVar{Name: "A"}},
						calculus.ElemBind{X: "X"})},
				R: calculus.Eq{L: calculus.Var{Name: "X"}, R: calculus.Str("Jo")},
			},
		},
	}
	plan := assertEquivalent(t, env, q, Options{})
	if plan.Branches == 0 {
		t.Error("expected (★) branches")
	}
	if !strings.Contains(plan.Explain(), "path-navigate") {
		t.Errorf("plan:\n%s", plan.Explain())
	}
}

func TestEquivalencePathsToValue(t *testing.T) {
	env := knuthEnv(t)
	q := &calculus.Query{
		Head: []calculus.VarDecl{{Name: "P", Sort: calculus.SortPath}},
		Body: calculus.Exists{
			Vars: []calculus.VarDecl{{Name: "X", Sort: calculus.SortData}},
			Body: calculus.And{
				L: calculus.PathAtom{Base: calculus.NameRef{Name: "Knuth_Books"},
					Path: calculus.P(calculus.ElemVar{Name: "P"}, calculus.ElemBind{X: "X"})},
				R: calculus.Eq{L: calculus.Var{Name: "X"}, R: calculus.Str("Jo")},
			},
		},
	}
	assertEquivalent(t, env, q, Options{})
}

func TestEquivalenceTitlesViaPathVariable(t *testing.T) {
	env := knuthEnv(t)
	q := &calculus.Query{
		Head: []calculus.VarDecl{{Name: "T", Sort: calculus.SortData}},
		Body: calculus.Exists{
			Vars: []calculus.VarDecl{{Name: "P", Sort: calculus.SortPath}},
			Body: calculus.PathAtom{Base: calculus.NameRef{Name: "Knuth_Books"},
				Path: calculus.P(calculus.ElemVar{Name: "P"},
					calculus.ElemAttr{A: calculus.AttrName{Name: "title"}},
					calculus.ElemBind{X: "T"})},
		},
	}
	assertEquivalent(t, env, q, Options{})
}

func TestEquivalenceNegationAcrossRoots(t *testing.T) {
	// The Q4 shape: paths in Doc and not in Old_Doc.
	s := store.NewSchema()
	docType := object.TupleOf(
		object.TField{Name: "title", Type: object.StringType},
		object.TField{Name: "paras", Type: object.ListOf(object.StringType)},
	)
	_ = s.AddRoot("Doc", docType)
	_ = s.AddRoot("Old_Doc", docType)
	in := store.NewInstance(s)
	_ = in.SetRoot("Doc", object.NewTuple(
		object.Field{Name: "title", Value: object.String_("T")},
		object.Field{Name: "paras", Value: object.NewList(object.String_("p1"), object.String_("p2"))},
	))
	_ = in.SetRoot("Old_Doc", object.NewTuple(
		object.Field{Name: "title", Value: object.String_("T")},
		object.Field{Name: "paras", Value: object.NewList(object.String_("p1"))},
	))
	env := calculus.NewEnv(in)
	q := &calculus.Query{
		Head: []calculus.VarDecl{{Name: "P", Sort: calculus.SortPath}},
		Body: calculus.And{
			L: calculus.PathAtom{Base: calculus.NameRef{Name: "Doc"}, Path: calculus.PVar("P")},
			R: calculus.Not{F: calculus.PathAtom{Base: calculus.NameRef{Name: "Old_Doc"}, Path: calculus.PVar("P")}},
		},
	}
	assertEquivalent(t, env, q, Options{})
}

func TestEquivalenceLettersOrdered(t *testing.T) {
	s := store.NewSchema()
	t1 := object.TupleOf(
		object.TField{Name: "from", Type: object.StringType},
		object.TField{Name: "to", Type: object.StringType},
	)
	t2 := object.TupleOf(
		object.TField{Name: "to", Type: object.StringType},
		object.TField{Name: "from", Type: object.StringType},
	)
	_ = s.AddRoot("Letters", object.ListOf(object.UnionOf(
		object.TField{Name: "a1", Type: t1},
		object.TField{Name: "a2", Type: t2},
	)))
	in := store.NewInstance(s)
	_ = in.SetRoot("Letters", object.NewList(
		object.NewUnion("a1", object.NewTuple(
			object.Field{Name: "from", Value: object.String_("alice")},
			object.Field{Name: "to", Value: object.String_("bob")},
		)),
		object.NewUnion("a2", object.NewTuple(
			object.Field{Name: "to", Value: object.String_("dan")},
			object.Field{Name: "from", Value: object.String_("carol")},
		)),
	))
	env := calculus.NewEnv(in)
	q := &calculus.Query{
		Head: []calculus.VarDecl{{Name: "Y", Sort: calculus.SortData}},
		Body: calculus.Exists{
			Vars: []calculus.VarDecl{
				{Name: "I", Sort: calculus.SortData},
				{Name: "J", Sort: calculus.SortData},
				{Name: "K", Sort: calculus.SortData},
			},
			Body: calculus.Conj(
				calculus.PathAtom{Base: calculus.NameRef{Name: "Letters"},
					Path: calculus.P(calculus.ElemIndex{I: calculus.Var{Name: "I"}},
						calculus.ElemBind{X: "Y"},
						calculus.ElemIndex{I: calculus.Var{Name: "J"}},
						calculus.ElemAttr{A: calculus.AttrName{Name: "to"}})},
				calculus.PathAtom{Base: calculus.NameRef{Name: "Letters"},
					Path: calculus.P(calculus.ElemIndex{I: calculus.Var{Name: "I"}},
						calculus.ElemIndex{I: calculus.Var{Name: "K"}},
						calculus.ElemAttr{A: calculus.AttrName{Name: "from"}})},
				calculus.Cmp{Op: calculus.Lt, L: calculus.Var{Name: "J"}, R: calculus.Var{Name: "K"}},
			),
		},
	}
	assertEquivalent(t, env, q, Options{})
}

func TestEquivalenceDisjunction(t *testing.T) {
	env := knuthEnv(t)
	mk := func(author string) calculus.Formula {
		return calculus.Exists{
			Vars: []calculus.VarDecl{{Name: "P", Sort: calculus.SortPath}},
			Body: calculus.Conj(
				calculus.PathAtom{Base: calculus.NameRef{Name: "Knuth_Books"},
					Path: calculus.P(calculus.ElemVar{Name: "P"},
						calculus.ElemAttr{A: calculus.AttrName{Name: "author"}},
						calculus.ElemBind{X: "X"})},
				calculus.Eq{L: calculus.Var{Name: "X"}, R: calculus.Str(author)},
			),
		}
	}
	q := &calculus.Query{
		Head: []calculus.VarDecl{{Name: "X", Sort: calculus.SortData}},
		Body: calculus.Or{L: mk("Jo"), R: mk("Knuth")},
	}
	assertEquivalent(t, env, q, Options{})
}

func TestEquivalenceMembershipAndFunctions(t *testing.T) {
	env := knuthEnv(t)
	q := &calculus.Query{
		Head: []calculus.VarDecl{{Name: "X", Sort: calculus.SortData}},
		Body: calculus.Exists{
			Vars: []calculus.VarDecl{{Name: "P", Sort: calculus.SortPath}},
			Body: calculus.Conj(
				calculus.PathAtom{Base: calculus.NameRef{Name: "Knuth_Books"},
					Path: calculus.P(calculus.ElemVar{Name: "P"}, calculus.ElemBind{X: "X"},
						calculus.ElemAttr{A: calculus.AttrName{Name: "title"}})},
				calculus.In{L: calculus.Str("D. Scott"),
					R: calculus.PathApply{Base: calculus.Var{Name: "X"},
						Path: calculus.P(calculus.ElemAttr{A: calculus.AttrName{Name: "review"}})}},
				calculus.Cmp{Op: calculus.Le,
					L: calculus.FuncCall{Name: "length", Args: []calculus.Term{calculus.PVar("P")}},
					R: calculus.Num(8)},
			),
		},
	}
	assertEquivalent(t, env, q, Options{})
}

func TestContainsWithAndWithoutIndex(t *testing.T) {
	env := knuthEnv(t)
	// Text extraction: chapters' titles as document text.
	env.TextOf = func(inst *store.Instance, v object.Value) string {
		if o, ok := v.(object.OID); ok {
			if inner, ok := inst.Deref(o); ok {
				if tup, ok := inner.(*object.Tuple); ok {
					if tv, ok := tup.Get("title"); ok {
						if s, ok := tv.(object.String_); ok {
							return string(s)
						}
					}
				}
			}
		}
		return ""
	}
	ix := text.NewIndex()
	for _, o := range env.Inst.Extent("Chapter") {
		ix.Add(text.DocID(o), env.TextOf(env.Inst, o))
	}
	q := &calculus.Query{
		Head: []calculus.VarDecl{{Name: "C", Sort: calculus.SortData}},
		Body: calculus.Exists{
			Vars: []calculus.VarDecl{{Name: "P", Sort: calculus.SortPath}},
			Body: calculus.Conj(
				calculus.PathAtom{Base: calculus.NameRef{Name: "Knuth_Books"},
					Path: calculus.P(calculus.ElemVar{Name: "P"},
						calculus.ElemAttr{A: calculus.AttrName{Name: "chapters"}},
						calculus.ElemIndex{I: calculus.Var{Name: "I"}},
						calculus.ElemBind{X: "C"})},
				calculus.Contains{T: calculus.Var{Name: "C"}, E: text.MustWord("Random")},
			),
		},
	}
	// The I variable must be quantified.
	q.Body = calculus.Exists{
		Vars: []calculus.VarDecl{{Name: "P", Sort: calculus.SortPath}, {Name: "I", Sort: calculus.SortData}},
		Body: q.Body.(calculus.Exists).Body,
	}
	withIdx := assertEquivalent(t, env, q, Options{Index: ix})
	if !strings.Contains(withIdx.Explain(), "index-contains") {
		t.Errorf("expected index access path:\n%s", withIdx.Explain())
	}
	assertEquivalent(t, env, q, Options{})
}

func TestMaxBranchesRejection(t *testing.T) {
	env := knuthEnv(t)
	q := &calculus.Query{
		Head: []calculus.VarDecl{{Name: "X", Sort: calculus.SortData}},
		Body: calculus.Exists{
			Vars: []calculus.VarDecl{
				{Name: "P", Sort: calculus.SortPath},
				{Name: "A", Sort: calculus.SortAttr},
			},
			Body: calculus.PathAtom{Base: calculus.NameRef{Name: "Knuth_Books"},
				Path: calculus.P(calculus.ElemVar{Name: "P"},
					calculus.ElemAttr{A: calculus.AttrVar{Name: "A"}},
					calculus.ElemBind{X: "X"})},
		},
	}
	if _, err := Translate(env, q, Options{MaxBranches: 2}); err == nil {
		t.Error("expansion beyond MaxBranches must be rejected")
	}
	plan, err := Translate(env, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Branches <= 2 {
		t.Errorf("expected many branches, got %d", plan.Branches)
	}
}

func TestTranslateRejectsUnsafe(t *testing.T) {
	env := knuthEnv(t)
	q := &calculus.Query{
		Head: []calculus.VarDecl{{Name: "X", Sort: calculus.SortData}},
		Body: calculus.Cmp{Op: calculus.Lt, L: calculus.Var{Name: "X"}, R: calculus.Num(1)},
	}
	if _, err := Translate(env, q, Options{}); err == nil {
		t.Error("unsafe query must be rejected")
	}
}

func TestTranslateUnknownRoot(t *testing.T) {
	env := knuthEnv(t)
	q := &calculus.Query{
		Head: []calculus.VarDecl{{Name: "P", Sort: calculus.SortPath}},
		Body: calculus.PathAtom{Base: calculus.NameRef{Name: "Nope"}, Path: calculus.PVar("P")},
	}
	if _, err := Translate(env, q, Options{}); err == nil {
		t.Error("unknown root must be rejected")
	}
}

func TestPlanExplainShapes(t *testing.T) {
	env := knuthEnv(t)
	q := &calculus.Query{
		Head: []calculus.VarDecl{{Name: "X", Sort: calculus.SortData}},
		Body: calculus.Exists{
			Vars: []calculus.VarDecl{{Name: "I", Sort: calculus.SortData}},
			Body: calculus.Conj(
				calculus.PathAtom{Base: calculus.NameRef{Name: "Knuth_Books"},
					Path: calculus.P(calculus.ElemDeref{},
						calculus.ElemAttr{A: calculus.AttrName{Name: "volumes"}},
						calculus.ElemIndex{I: calculus.Var{Name: "I"}},
						calculus.ElemBind{X: "X"})},
				calculus.Cmp{Op: calculus.Ge, L: calculus.Var{Name: "I"}, R: calculus.Num(0)},
			),
		},
	}
	plan := assertEquivalent(t, env, q, Options{})
	out := plan.Explain()
	for _, want := range []string{"project", "path-navigate", "select"} {
		if !strings.Contains(out, want) {
			t.Errorf("plan missing %q:\n%s", want, out)
		}
	}
}
