// Package text implements the information-retrieval substrate of Section
// 4.1: the contains predicate matching strings against patterns or boolean
// combinations of patterns (built from concatenation, disjunction, Kleene
// closure, …), the near predicate on word distance, a tokenizer, and a
// positional inverted index for full-text acceleration — the facilities
// IRS systems provide and the paper integrates into the query language.
//
// The pattern engine is a from-scratch Thompson NFA (no backtracking, so
// matching is linear in the text), built here rather than on a library so
// the word-level boolean algebra and the index can share its machinery.
package text

import (
	"fmt"
	"strings"
)

// Pattern is a compiled character-level pattern (the atoms of contains).
// Matching is unanchored: a pattern matches a string if it matches any
// substring, which is the IRS "contains" convention.
type Pattern struct {
	src  string
	prog *program
	// literal is the lower-cased word when the pattern is a bare literal
	// without operators: the index answers those without scanning its
	// vocabulary.
	literal string
}

// Source returns the pattern's source text.
func (p *Pattern) Source() string { return p.src }

// Literal returns the bare lower-cased literal and true when the pattern
// contains no operators.
func (p *Pattern) Literal() (string, bool) { return p.literal, p.literal != "" }

// String renders the pattern source, quoted.
func (p *Pattern) String() string { return fmt.Sprintf("%q", p.src) }

// Compile parses and compiles a pattern. The syntax:
//
//	abc         literal characters (matching is case-sensitive; use
//	            classes like (t|T) for case variants, as the paper does)
//	(p)         grouping
//	p|q         alternation
//	p* p+ p?    closure, positive closure, option
//	.           any character
//	[a-z0-9]    character class ([^…] negated)
//	\x          escape a metacharacter
func Compile(src string) (*Pattern, error) {
	ast, err := parsePattern(src)
	if err != nil {
		return nil, err
	}
	prog := compileAST(ast)
	p := &Pattern{src: src, prog: prog}
	if lit, ok := literalOf(ast); ok && lit != "" {
		p.literal = strings.ToLower(lit)
	}
	return p, nil
}

// MustCompile is Compile that panics on error, for fixed patterns.
func MustCompile(src string) *Pattern {
	p, err := Compile(src)
	if err != nil {
		//lint:allow panic Must* constructor for fixed patterns, by convention
		panic(err)
	}
	return p
}

// Match reports whether the pattern matches anywhere in s.
func (p *Pattern) Match(s string) bool { return p.prog.search(s) }

// node is the pattern AST.
//
//sgmldbvet:closed
type node interface{ isNode() }

type litNode struct{ r rune }
type anyNode struct{}
type classNode struct {
	neg    bool
	ranges []runeRange
}
type runeRange struct{ lo, hi rune }
type seqNode struct{ items []node }
type altNode struct{ items []node }
type starNode struct{ item node }
type plusNode struct{ item node }
type optNode struct{ item node }
type emptyNode struct{}

func (litNode) isNode()   {}
func (anyNode) isNode()   {}
func (classNode) isNode() {}
func (seqNode) isNode()   {}
func (altNode) isNode()   {}
func (starNode) isNode()  {}
func (plusNode) isNode()  {}
func (optNode) isNode()   {}
func (emptyNode) isNode() {}

// literalOf extracts the literal string of an operator-free pattern.
func literalOf(n node) (string, bool) {
	switch x := n.(type) {
	case litNode:
		return string(x.r), true
	case seqNode:
		var b strings.Builder
		for _, it := range x.items {
			s, ok := literalOf(it)
			if !ok {
				return "", false
			}
			b.WriteString(s)
		}
		return b.String(), true
	case emptyNode:
		return "", true
	default:
		return "", false
	}
}

type patternParser struct {
	src []rune
	pos int
}

func parsePattern(src string) (node, error) {
	p := &patternParser{src: []rune(src)}
	n, err := p.alt()
	if err != nil {
		return nil, err
	}
	if p.pos < len(p.src) {
		return nil, fmt.Errorf("text: unexpected %q at %d in pattern %q", p.src[p.pos], p.pos, src)
	}
	return n, nil
}

func (p *patternParser) alt() (node, error) {
	first, err := p.seq()
	if err != nil {
		return nil, err
	}
	items := []node{first}
	for p.pos < len(p.src) && p.src[p.pos] == '|' {
		p.pos++
		n, err := p.seq()
		if err != nil {
			return nil, err
		}
		items = append(items, n)
	}
	if len(items) == 1 {
		return first, nil
	}
	return altNode{items: items}, nil
}

func (p *patternParser) seq() (node, error) {
	var items []node
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == '|' || c == ')' {
			break
		}
		n, err := p.repeat()
		if err != nil {
			return nil, err
		}
		items = append(items, n)
	}
	switch len(items) {
	case 0:
		return emptyNode{}, nil
	case 1:
		return items[0], nil
	default:
		return seqNode{items: items}, nil
	}
}

func (p *patternParser) repeat() (node, error) {
	n, err := p.atom()
	if err != nil {
		return nil, err
	}
	for p.pos < len(p.src) {
		switch p.src[p.pos] {
		case '*':
			p.pos++
			n = starNode{item: n}
		case '+':
			p.pos++
			n = plusNode{item: n}
		case '?':
			p.pos++
			n = optNode{item: n}
		default:
			return n, nil
		}
	}
	return n, nil
}

func (p *patternParser) atom() (node, error) {
	if p.pos >= len(p.src) {
		return nil, fmt.Errorf("text: unexpected end of pattern")
	}
	c := p.src[p.pos]
	switch c {
	case '(':
		p.pos++
		n, err := p.alt()
		if err != nil {
			return nil, err
		}
		if p.pos >= len(p.src) || p.src[p.pos] != ')' {
			return nil, fmt.Errorf("text: missing ) in pattern")
		}
		p.pos++
		return n, nil
	case '.':
		p.pos++
		return anyNode{}, nil
	case '[':
		return p.class()
	case '\\':
		p.pos++
		if p.pos >= len(p.src) {
			return nil, fmt.Errorf("text: dangling escape in pattern")
		}
		r := p.src[p.pos]
		p.pos++
		return litNode{r: r}, nil
	case '*', '+', '?':
		return nil, fmt.Errorf("text: %q with nothing to repeat", c)
	case ')':
		return nil, fmt.Errorf("text: unmatched ) in pattern")
	default:
		p.pos++
		return litNode{r: c}, nil
	}
}

func (p *patternParser) class() (node, error) {
	p.pos++ // consume '['
	n := classNode{}
	if p.pos < len(p.src) && p.src[p.pos] == '^' {
		n.neg = true
		p.pos++
	}
	for p.pos < len(p.src) && p.src[p.pos] != ']' {
		lo := p.src[p.pos]
		if lo == '\\' && p.pos+1 < len(p.src) {
			p.pos++
			lo = p.src[p.pos]
		}
		p.pos++
		hi := lo
		if p.pos+1 < len(p.src) && p.src[p.pos] == '-' && p.src[p.pos+1] != ']' {
			p.pos++
			hi = p.src[p.pos]
			if hi == '\\' && p.pos+1 < len(p.src) {
				p.pos++
				hi = p.src[p.pos]
			}
			p.pos++
		}
		if hi < lo {
			lo, hi = hi, lo
		}
		n.ranges = append(n.ranges, runeRange{lo: lo, hi: hi})
	}
	if p.pos >= len(p.src) {
		return nil, fmt.Errorf("text: unterminated character class")
	}
	p.pos++ // consume ']'
	if len(n.ranges) == 0 {
		return nil, fmt.Errorf("text: empty character class")
	}
	return n, nil
}
