package oql

import (
	"fmt"
	"strconv"
)

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks []token
	pos  int
}

// Parse parses one O₂SQL query.
func Parse(src string) (Expr, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokEOF {
		return nil, p.errf("unexpected %s after query", p.peek())
	}
	return e, nil
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) peek2() token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}
func (p *parser) advance() token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("%w at offset %d: %s", ErrParse, p.peek().pos, fmt.Sprintf(format, args...))
}

func (p *parser) keyword(kw string) bool {
	t := p.peek()
	if t.kind == tokKeyword && t.text == kw {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expect(kind tokenKind, what string) (token, error) {
	t := p.peek()
	if t.kind != kind {
		return token{}, p.errf("expected %s, found %s", what, t)
	}
	return p.advance(), nil
}

// expr parses a full expression (or-level).
func (p *parser) expr() (Expr, error) {
	if p.peek().kind == tokKeyword && p.peek().text == "select" {
		return p.selectExpr()
	}
	return p.orExpr()
}

func (p *parser) selectExpr() (Expr, error) {
	p.advance() // select
	p.keyword("distinct")
	proj, err := p.orExpr()
	if err != nil {
		return nil, err
	}
	if !p.keyword("from") {
		return nil, p.errf("expected from, found %s", p.peek())
	}
	var from []FromBinding
	for {
		b, err := p.fromBinding()
		if err != nil {
			return nil, err
		}
		from = append(from, b)
		if p.peek().kind == tokComma {
			p.advance()
			continue
		}
		break
	}
	sel := SelectExpr{Proj: proj, From: from}
	if p.keyword("where") {
		w, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		sel.Where = w
	}
	return sel, nil
}

// fromBinding parses one from-clause entry:
//
//	x in coll
//	attr(i) in coll          (position binding, Section 4.4)
//	base PATH_p.title(t)     (path pattern binding, Section 4.3)
func (p *parser) fromBinding() (FromBinding, error) {
	t := p.peek()
	// attr(i) in coll — the attribute may be any name, including words
	// that are otherwise keywords (Section 4.4 uses "from" itself).
	if (t.kind == tokIdent || t.kind == tokKeyword) && p.lookaheadPositionBinding() {
		attr := p.advance().text
		p.advance() // (
		v, err := p.expect(tokIdent, "position variable")
		if err != nil {
			return FromBinding{}, err
		}
		if _, err := p.expect(tokRParen, ")"); err != nil {
			return FromBinding{}, err
		}
		if !p.keyword("in") {
			return FromBinding{}, p.errf("expected in after position binding")
		}
		coll, err := p.orExpr()
		if err != nil {
			return FromBinding{}, err
		}
		return FromBinding{Attr: attr, PosVar: v.text, Coll: coll}, nil
	}
	// x in coll.
	if t.kind == tokIdent && p.peek2().kind == tokKeyword && p.peek2().text == "in" {
		v := p.advance().text
		p.advance() // in
		coll, err := p.orExpr()
		if err != nil {
			return FromBinding{}, err
		}
		return FromBinding{Var: v, Coll: coll}, nil
	}
	// Path pattern binding.
	e, err := p.orExpr()
	if err != nil {
		return FromBinding{}, err
	}
	if _, ok := e.(PathExpr); !ok {
		return FromBinding{}, p.errf("from entry %s is neither 'x in coll' nor a path pattern", e)
	}
	return FromBinding{Base: e}, nil
}

// lookaheadPositionBinding reports whether the tokens ahead form
// attr(ident) in … — the Section 4.4 position binding shape.
func (p *parser) lookaheadPositionBinding() bool {
	at := func(i int) token {
		j := p.pos + i
		if j >= len(p.toks) {
			return p.toks[len(p.toks)-1]
		}
		return p.toks[j]
	}
	return at(1).kind == tokLParen && at(2).kind == tokIdent &&
		at(3).kind == tokRParen && at(4).kind == tokKeyword && at(4).text == "in"
}

func (p *parser) orExpr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.keyword("or") {
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = Binary{Op: OpOr, L: l, R: r}
	}
	return l, nil
}

func (p *parser) andExpr() (Expr, error) {
	l, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.keyword("and") {
		r, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		l = Binary{Op: OpAnd, L: l, R: r}
	}
	return l, nil
}

func (p *parser) notExpr() (Expr, error) {
	if p.keyword("not") {
		e, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return NotExpr{E: e}, nil
	}
	return p.cmpExpr()
}

// cmpExpr parses comparisons, membership and contains (non-associative).
func (p *parser) cmpExpr() (Expr, error) {
	l, err := p.setOpExpr()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	var op BinOp
	switch {
	case t.kind == tokEq:
		op = OpEq
	case t.kind == tokNe:
		op = OpNe
	case t.kind == tokLt:
		op = OpLt
	case t.kind == tokLe:
		op = OpLe
	case t.kind == tokGt:
		op = OpGt
	case t.kind == tokGe:
		op = OpGe
	case t.kind == tokKeyword && t.text == "in":
		op = OpIn
	case t.kind == tokKeyword && t.text == "contains":
		p.advance()
		pat, err := p.patternExpr()
		if err != nil {
			return nil, err
		}
		return ContainsExpr{Subject: l, Pattern: pat}, nil
	default:
		return l, nil
	}
	p.advance()
	r, err := p.setOpExpr()
	if err != nil {
		return nil, err
	}
	return Binary{Op: op, L: l, R: r}, nil
}

func (p *parser) setOpExpr() (Expr, error) {
	l, err := p.postfixExpr()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		var op BinOp
		switch {
		case t.kind == tokKeyword && t.text == "union":
			op = OpUnion
		case t.kind == tokKeyword && t.text == "intersect":
			op = OpIntersect
		case t.kind == tokKeyword && t.text == "except", t.kind == tokMinus:
			op = OpExcept
		case t.kind == tokPlus:
			op = OpUnion
		default:
			return l, nil
		}
		p.advance()
		r, err := p.postfixExpr()
		if err != nil {
			return nil, err
		}
		l = Binary{Op: op, L: l, R: r}
	}
}

// postfixExpr parses a primary expression followed by a path suffix.
func (p *parser) postfixExpr() (Expr, error) {
	base, err := p.primary()
	if err != nil {
		return nil, err
	}
	var elems []PatElem
	for {
		t := p.peek()
		switch {
		case t.kind == tokDot:
			p.advance()
			nt := p.peek()
			switch nt.kind {
			case tokIdent, tokKeyword:
				p.advance()
				elems = append(elems, AttrP{Name: nt.text})
			case tokAttrVar:
				p.advance()
				elems = append(elems, AttrVarP{Name: nt.text})
			default:
				return nil, p.errf("expected attribute after '.', found %s", nt)
			}
		case t.kind == tokLBrack:
			p.advance()
			idx, err := p.orExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokRBrack, "]"); err != nil {
				return nil, err
			}
			elems = append(elems, IdxP{I: idx})
		case t.kind == tokArrow:
			p.advance()
			elems = append(elems, DerefP{})
		case t.kind == tokPathVar:
			p.advance()
			elems = append(elems, PathVarP{Name: t.text})
		case t.kind == tokDotDot:
			p.advance()
			elems = append(elems, DotDotP{})
			// The ".." sugar is followed by a bare attribute name:
			// from my_article .. title(t).
			nt := p.peek()
			if nt.kind == tokIdent || nt.kind == tokAttrVar {
				p.advance()
				if nt.kind == tokAttrVar {
					elems = append(elems, AttrVarP{Name: nt.text})
				} else {
					elems = append(elems, AttrP{Name: nt.text})
				}
			}
		case t.kind == tokLParen && len(elems) > 0 &&
			p.peek2().kind == tokIdent && p.toks[min(p.pos+2, len(p.toks)-1)].kind == tokRParen:
			// A binding (x) after a path element.
			p.advance()
			v := p.advance()
			p.advance() // )
			elems = append(elems, BindP{Var: v.text})
		default:
			if len(elems) == 0 {
				return base, nil
			}
			return PathExpr{Base: base, Elems: elems}, nil
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func (p *parser) primary() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokInt:
		p.advance()
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errf("bad integer %q", t.text)
		}
		return IntLit{V: n}, nil
	case tokFloat:
		p.advance()
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, p.errf("bad float %q", t.text)
		}
		return FloatLit{V: f}, nil
	case tokString:
		p.advance()
		return StringLit{V: t.text}, nil
	case tokPathVar:
		p.advance()
		return PathVarRef{Name: t.text}, nil
	case tokAttrVar:
		p.advance()
		return AttrVarRef{Name: t.text}, nil
	case tokLParen:
		p.advance()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, ")"); err != nil {
			return nil, err
		}
		return e, nil
	case tokKeyword:
		switch t.text {
		case "true":
			p.advance()
			return BoolLit{V: true}, nil
		case "false":
			p.advance()
			return BoolLit{V: false}, nil
		case "nil":
			p.advance()
			return NilLit{}, nil
		case "select":
			return p.selectExpr()
		case "tuple":
			p.advance()
			return p.tupleCons()
		case "list":
			p.advance()
			items, err := p.argList()
			if err != nil {
				return nil, err
			}
			return ListCons{Items: items}, nil
		case "set":
			p.advance()
			items, err := p.argList()
			if err != nil {
				return nil, err
			}
			return SetCons{Items: items}, nil
		case "exists", "forall":
			kw := t.text
			p.advance()
			v, err := p.expect(tokIdent, "variable")
			if err != nil {
				return nil, err
			}
			if !p.keyword("in") {
				return nil, p.errf("expected in after %s %s", kw, v.text)
			}
			coll, err := p.setOpExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokColon, ":"); err != nil {
				return nil, err
			}
			cond, err := p.orExpr()
			if err != nil {
				return nil, err
			}
			if kw == "exists" {
				return ExistsExpr{Var: v.text, Coll: coll, Cond: cond}, nil
			}
			return ForallExpr{Var: v.text, Coll: coll, Cond: cond}, nil
		case "element":
			p.advance()
			if _, err := p.expect(tokLParen, "("); err != nil {
				return nil, err
			}
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokRParen, ")"); err != nil {
				return nil, err
			}
			return Call{Name: "element", Args: []Expr{e}}, nil
		case "near":
			p.advance()
			return p.nearCond()
		default:
			return nil, p.errf("unexpected keyword %s", t.text)
		}
	case tokIdent:
		p.advance()
		if p.peek().kind == tokLParen {
			// A function call.
			p.advance()
			var args []Expr
			if p.peek().kind != tokRParen {
				for {
					a, err := p.expr()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if p.peek().kind == tokComma {
						p.advance()
						continue
					}
					break
				}
			}
			if _, err := p.expect(tokRParen, ")"); err != nil {
				return nil, err
			}
			return Call{Name: t.text, Args: args}, nil
		}
		return Ident{Name: t.text}, nil
	default:
		return nil, p.errf("unexpected %s", t)
	}
}

// nearCond parses near(subject, "a", "b", k).
func (p *parser) nearCond() (Expr, error) {
	if _, err := p.expect(tokLParen, "("); err != nil {
		return nil, err
	}
	subj, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokComma, ","); err != nil {
		return nil, err
	}
	a, err := p.expect(tokString, "word literal")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokComma, ","); err != nil {
		return nil, err
	}
	b, err := p.expect(tokString, "word literal")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokComma, ","); err != nil {
		return nil, err
	}
	k, err := p.expect(tokInt, "distance")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokRParen, ")"); err != nil {
		return nil, err
	}
	n, _ := strconv.ParseInt(k.text, 10, 64)
	return NearCond{Subject: subj, A: a.text, B: b.text, Dist: n}, nil
}

func (p *parser) tupleCons() (Expr, error) {
	if _, err := p.expect(tokLParen, "("); err != nil {
		return nil, err
	}
	var fields []TupleField
	if p.peek().kind != tokRParen {
		for {
			name, err := p.fieldName()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokColon, ":"); err != nil {
				return nil, err
			}
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			fields = append(fields, TupleField{Name: name, E: e})
			if p.peek().kind == tokComma {
				p.advance()
				continue
			}
			break
		}
	}
	if _, err := p.expect(tokRParen, ")"); err != nil {
		return nil, err
	}
	return TupleCons{Fields: fields}, nil
}

func (p *parser) fieldName() (string, error) {
	t := p.peek()
	if t.kind == tokIdent || t.kind == tokKeyword {
		p.advance()
		return t.text, nil
	}
	return "", p.errf("expected field name, found %s", t)
}

func (p *parser) argList() ([]Expr, error) {
	if _, err := p.expect(tokLParen, "("); err != nil {
		return nil, err
	}
	var items []Expr
	if p.peek().kind != tokRParen {
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			items = append(items, e)
			if p.peek().kind == tokComma {
				p.advance()
				continue
			}
			break
		}
	}
	if _, err := p.expect(tokRParen, ")"); err != nil {
		return nil, err
	}
	return items, nil
}

// patternExpr parses the operand of contains: a boolean combination of
// pattern literals.
func (p *parser) patternExpr() (PatternExpr, error) {
	return p.patOr()
}

func (p *parser) patOr() (PatternExpr, error) {
	l, err := p.patAnd()
	if err != nil {
		return nil, err
	}
	for p.keyword("or") {
		r, err := p.patAnd()
		if err != nil {
			return nil, err
		}
		l = PatOr{L: l, R: r}
	}
	return l, nil
}

func (p *parser) patAnd() (PatternExpr, error) {
	l, err := p.patNot()
	if err != nil {
		return nil, err
	}
	for p.keyword("and") {
		r, err := p.patNot()
		if err != nil {
			return nil, err
		}
		l = PatAnd{L: l, R: r}
	}
	return l, nil
}

func (p *parser) patNot() (PatternExpr, error) {
	if p.keyword("not") {
		e, err := p.patNot()
		if err != nil {
			return nil, err
		}
		return PatNot{E: e}, nil
	}
	t := p.peek()
	switch t.kind {
	case tokString:
		p.advance()
		return PatLit{Src: t.text}, nil
	case tokLParen:
		p.advance()
		e, err := p.patOr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, ")"); err != nil {
			return nil, err
		}
		return e, nil
	default:
		return nil, p.errf("expected a pattern literal, found %s", t)
	}
}
