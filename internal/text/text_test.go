package text

import (
	"math/rand"
	"strings"
	"testing"
)

func TestPatternLiterals(t *testing.T) {
	p := MustCompile("SGML")
	if !p.Match("an SGML document") || p.Match("an XML document") {
		t.Error("literal match")
	}
	if lit, ok := p.Literal(); !ok || lit != "sgml" {
		t.Errorf("Literal = %q %v", lit, ok)
	}
	// Matching is case-sensitive at the pattern level.
	if p.Match("sgml") {
		t.Error("case sensitivity")
	}
	// Substring (unanchored) semantics.
	if !MustCompile("GM").Match("SGML") {
		t.Error("substring search")
	}
	if p.Source() != "SGML" || p.String() != `"SGML"` {
		t.Error("Source/String")
	}
}

func TestPatternOperators(t *testing.T) {
	cases := []struct {
		pat string
		yes []string
		no  []string
	}{
		{"(t|T)itle", []string{"title", "Title", "subTitle"}, []string{"TITLE", "titl"}},
		{"ab*c", []string{"ac", "abc", "abbbc"}, []string{"a c", "adc"}},
		{"ab+c", []string{"abc", "abbc"}, []string{"ac"}},
		{"ab?c", []string{"ac", "abc"}, []string{"abbc x"}},
		{"a.c", []string{"abc", "a c", "axc"}, []string{"ab"}},
		{"[a-c]x", []string{"ax", "bx", "cx"}, []string{"dx"}},
		{"[^a-c]x", []string{"dx", " x"}, []string{"ax only bx cx"}},
		{`a\*b`, []string{"a*b"}, []string{"aab"}},
		{"(ab|cd)+e", []string{"abe", "cdabe"}, []string{"e", "ade"}},
		{"", []string{"", "anything"}, nil}, // empty pattern matches everywhere
		{"x|", []string{"x", "anything"}, nil},
		{"[0-9]+cm", []string{"16cm"}, []string{"cm"}},
	}
	for _, c := range cases {
		p, err := Compile(c.pat)
		if err != nil {
			t.Fatalf("Compile(%q): %v", c.pat, err)
		}
		for _, s := range c.yes {
			if !p.Match(s) {
				t.Errorf("%q must match %q", c.pat, s)
			}
		}
		for _, s := range c.no {
			if p.Match(s) {
				t.Errorf("%q must not match %q", c.pat, s)
			}
		}
	}
	if _, ok := MustCompile("a*").Literal(); ok {
		t.Error("operator pattern has no literal")
	}
}

func TestPatternErrors(t *testing.T) {
	for _, bad := range []string{"(", "(a", ")", "a)", "[", "[]", "*", "+a", "?", `\`} {
		if _, err := Compile(bad); err == nil {
			t.Errorf("Compile(%q) must fail", bad)
		}
	}
}

func TestMustCompilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustCompile must panic on bad pattern")
		}
	}()
	MustCompile("(")
}

func TestBooleanCombinations(t *testing.T) {
	title := "Combining SGML repositories with an OODBMS"
	// Q1's pattern: contains ("SGML" and "OODBMS").
	e := And(MustWord("SGML"), MustWord("OODBMS"))
	if !Contains(title, e) {
		t.Error("Q1 combination must hold")
	}
	if Contains("SGML only", e) {
		t.Error("and must require both")
	}
	if !Contains("SGML only", Or(MustWord("OODBMS"), MustWord("SGML"))) {
		t.Error("or")
	}
	if Contains(title, Not(MustWord("SGML"))) {
		t.Error("not")
	}
	if !Contains(title, Not(MustWord("XQuery"))) {
		t.Error("not of absent word")
	}
	if got := e.String(); got != `("SGML" and "OODBMS")` {
		t.Errorf("And String = %s", got)
	}
	if got := Or(MustWord("a"), Not(MustWord("b"))).String(); got != `("a" or not "b")` {
		t.Errorf("Or String = %s", got)
	}
	// Word escapes metacharacters.
	if !Contains("f(x)=y*z", MustWord("f(x)=y*z")) {
		t.Error("Word must escape metacharacters")
	}
	// PatternExpr exposes raw syntax.
	pe, err := PatternExpr("(t|T)itle")
	if err != nil {
		t.Fatal(err)
	}
	if !Contains("the Title", pe) {
		t.Error("PatternExpr")
	}
	if _, err := PatternExpr("("); err == nil {
		t.Error("PatternExpr must propagate errors")
	}
	ok, err := ContainsWord("complex object store", "complex object")
	if err != nil {
		t.Fatalf("ContainsWord: %v", err)
	}
	if !ok {
		t.Error("ContainsWord phrase")
	}
	if _, err := Word("complex object"); err != nil {
		t.Errorf("Word: %v", err)
	}
}

func TestNear(t *testing.T) {
	s := "the query language supports complex object manipulation"
	if !Contains(s, NearExpr{A: "query", B: "complex", Dist: 3}) {
		t.Error("within 3 words")
	}
	if Contains(s, NearExpr{A: "query", B: "manipulation", Dist: 3}) {
		t.Error("too far")
	}
	if !Contains(s, NearExpr{A: "complex", B: "object", Dist: 0}) {
		t.Error("adjacent words are 0 apart")
	}
	// Symmetric.
	if !Contains(s, NearExpr{A: "object", B: "complex", Dist: 0}) {
		t.Error("near is symmetric")
	}
	// Character distance.
	if !Contains(s, NearExpr{A: "the", B: "query", Dist: 1, Chars: true}) {
		t.Error("char distance")
	}
	if Contains(s, NearExpr{A: "the", B: "supports", Dist: 3, Chars: true}) {
		t.Error("char distance too far")
	}
	if Contains("no words", NearExpr{A: "x", B: "y", Dist: 5}) {
		t.Error("absent words")
	}
	if got := (NearExpr{A: "a", B: "b", Dist: 2}).String(); got != `near("a", "b", 2 words)` {
		t.Errorf("Near String = %s", got)
	}
}

func TestTokenize(t *testing.T) {
	toks := Tokenize("The O2-DBMS, v1.0!")
	words := make([]string, len(toks))
	for i, tk := range toks {
		words[i] = tk.Word
	}
	want := []string{"the", "o2", "dbms", "v1", "0"}
	if strings.Join(words, " ") != strings.Join(want, " ") {
		t.Errorf("words = %v", words)
	}
	for i, tk := range toks {
		if tk.Pos != i {
			t.Errorf("token %d Pos = %d", i, tk.Pos)
		}
	}
	if toks[1].Offset != 4 {
		t.Errorf("O2 offset = %d", toks[1].Offset)
	}
	if len(Tokenize("")) != 0 || len(Tokenize("   ,,,")) != 0 {
		t.Error("empty tokenisation")
	}
	if got := Words("A b C"); len(got) != 3 || got[2] != "c" {
		t.Errorf("Words = %v", got)
	}
}

func buildIndex() *Index {
	ix := NewIndex()
	ix.Add(1, "SGML documents in an object oriented database")
	ix.Add(2, "the OODBMS stores complex objects")
	ix.Add(3, "SGML meets the OODBMS: complex object support")
	ix.Add(4, "relational tables and tuples")
	return ix
}

func TestIndexLookup(t *testing.T) {
	ix := buildIndex()
	if ix.Size() != 4 {
		t.Errorf("Size = %d", ix.Size())
	}
	if ix.VocabularySize() == 0 {
		t.Error("vocabulary empty")
	}
	if got := ix.Lookup("sgml"); len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("Lookup(sgml) = %v", got)
	}
	if got := ix.Lookup("nothing"); len(got) != 0 {
		t.Errorf("Lookup(nothing) = %v", got)
	}
	if got := ix.Docs(); len(got) != 4 {
		t.Errorf("Docs = %v", got)
	}
}

func TestIndexEval(t *testing.T) {
	ix := buildIndex()
	// Q1's conjunction.
	got := ix.Eval(And(MustWord("SGML"), MustWord("OODBMS")))
	if len(got) != 1 || got[0] != 3 {
		t.Errorf("and = %v", got)
	}
	got = ix.Eval(Or(MustWord("SGML"), MustWord("relational")))
	if len(got) != 3 {
		t.Errorf("or = %v", got)
	}
	got = ix.Eval(Not(MustWord("SGML")))
	if len(got) != 2 || got[0] != 2 || got[1] != 4 {
		t.Errorf("not = %v", got)
	}
	// Pattern atom scans the vocabulary.
	pe, _ := PatternExpr("(s|S)(g|G)(m|M)(l|L)")
	got = ix.Eval(pe)
	if len(got) != 2 {
		t.Errorf("pattern = %v", got)
	}
	// Phrase: consecutive words.
	got = ix.Eval(MustWord("complex object"))
	if len(got) != 1 || got[0] != 3 {
		t.Errorf("phrase = %v", got)
	}
	got = ix.Eval(MustWord("complex objects"))
	if len(got) != 1 || got[0] != 2 {
		t.Errorf("phrase 2 = %v", got)
	}
	// Near through positions.
	got = ix.Eval(NearExpr{A: "complex", B: "support", Dist: 1})
	if len(got) != 1 || got[0] != 3 {
		t.Errorf("near = %v", got)
	}
	// Empty results.
	if got := ix.Eval(MustWord("zebra")); len(got) != 0 {
		t.Errorf("missing word = %v", got)
	}
}

// TestIndexAgreesWithScan cross-checks the index against direct text
// scanning on random word queries: the accelerated and the naive
// evaluation of contains must coincide (experiment B2's correctness leg).
func TestIndexAgreesWithScan(t *testing.T) {
	vocab := []string{"sgml", "oodbms", "query", "path", "document", "schema", "type", "union"}
	r := rand.New(rand.NewSource(11))
	docs := make(map[DocID]string)
	ix := NewIndex()
	for d := DocID(1); d <= 40; d++ {
		n := 3 + r.Intn(10)
		words := make([]string, n)
		for i := range words {
			words[i] = vocab[r.Intn(len(vocab))]
		}
		text := strings.Join(words, " ")
		docs[d] = text
		ix.Add(d, text)
	}
	for trial := 0; trial < 200; trial++ {
		var e Expr = MustWord(vocab[r.Intn(len(vocab))])
		for d := 0; d < 2; d++ {
			w := MustWord(vocab[r.Intn(len(vocab))])
			switch r.Intn(3) {
			case 0:
				e = And(e, w)
			case 1:
				e = Or(e, w)
			case 2:
				e = And(e, Not(w))
			}
		}
		want := map[DocID]bool{}
		for d, text := range docs {
			if Contains(text, e) {
				want[d] = true
			}
		}
		got := ix.Eval(e)
		if len(got) != len(want) {
			t.Fatalf("expr %s: index %v vs scan %v", e, got, want)
		}
		for _, d := range got {
			if !want[d] {
				t.Fatalf("expr %s: doc %d in index result but not in scan", e, d)
			}
		}
	}
}

func TestIndexPositionsAccumulate(t *testing.T) {
	ix := NewIndex()
	ix.Add(7, "alpha beta")
	ix.Add(7, "beta gamma") // same doc indexed again: positions accumulate
	if ix.Size() != 1 {
		t.Errorf("Size = %d", ix.Size())
	}
	if got := ix.Lookup("beta"); len(got) != 1 {
		t.Errorf("beta = %v", got)
	}
}

func TestNFAResistPathological(t *testing.T) {
	// (a?)ⁿaⁿ — catastrophic for backtracking engines, linear for the NFA.
	n := 24
	pat := strings.Repeat("a?", n) + strings.Repeat("a", n)
	p, err := Compile(pat)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Match(strings.Repeat("a", n)) {
		t.Error("pathological pattern must match")
	}
	if p.Match(strings.Repeat("b", n)) {
		t.Error("pathological pattern must not match b's")
	}
}
