package store

import (
	"bytes"
	"testing"

	"sgmldb/internal/object"
)

// cowSchema builds a minimal schema for the COW tests: one class with a
// free-form tuple type and a plural root.
func cowSchema(t *testing.T) *Schema {
	t.Helper()
	s := NewSchema()
	if err := s.AddClass("Doc", object.TupleOf(object.TField{Name: "n", Type: object.IntType})); err != nil {
		t.Fatal(err)
	}
	if err := s.AddRoot("Docs", object.ListOf(object.Class("Doc"))); err != nil {
		t.Fatal(err)
	}
	return s
}

func newDoc(t *testing.T, in *Instance, n int) object.OID {
	t.Helper()
	o, err := in.NewObject("Doc", object.NewTuple(object.Field{Name: "n", Value: object.Int(n)}))
	if err != nil {
		t.Fatal(err)
	}
	return o
}

// TestBeginStagesWithoutTouchingBase is the atomicity core: mutations on
// a Begin layer are invisible from the base, and discarding the layer
// discards them wholesale.
func TestBeginStagesWithoutTouchingBase(t *testing.T) {
	in := NewInstance(cowSchema(t))
	d1 := newDoc(t, in, 1)
	if err := in.SetRoot("Docs", object.NewList(d1)); err != nil {
		t.Fatal(err)
	}

	staged := in.Begin()
	if staged.Epoch() != in.Epoch()+1 {
		t.Errorf("staged epoch = %d, base %d", staged.Epoch(), in.Epoch())
	}
	d2 := newDoc(t, staged, 2)
	if err := staged.SetRoot("Docs", object.NewList(d1, d2)); err != nil {
		t.Fatal(err)
	}

	// The staged layer sees both objects and the new root …
	if staged.NumObjects() != 2 {
		t.Errorf("staged NumObjects = %d", staged.NumObjects())
	}
	if v, ok := staged.Deref(d2); !ok || v == nil {
		t.Error("staged Deref(d2) failed")
	}
	if r, _ := staged.Root("Docs"); r.(*object.List).Len() != 2 {
		t.Errorf("staged root = %s", r)
	}
	if got := staged.Extent("Doc"); len(got) != 2 || got[0] != d1 || got[1] != d2 {
		t.Errorf("staged extent = %v", got)
	}

	// … while the base is untouched: d2 simply never happened.
	if in.NumObjects() != 1 {
		t.Errorf("base NumObjects = %d after staging", in.NumObjects())
	}
	if _, ok := in.Deref(d2); ok {
		t.Error("staged object leaked into base")
	}
	if r, _ := in.Root("Docs"); r.(*object.List).Len() != 1 {
		t.Errorf("base root = %s", r)
	}
	if errs := in.Check(); len(errs) != 0 {
		t.Errorf("base Check after discarded staging: %v", errs)
	}
}

// TestCOWSetValueShadowsBase checks that a staged SetValue on an old oid
// shadows rather than overwrites.
func TestCOWSetValueShadowsBase(t *testing.T) {
	in := NewInstance(cowSchema(t))
	d1 := newDoc(t, in, 1)
	staged := in.Begin()
	if err := staged.SetValue(d1, object.NewTuple(object.Field{Name: "n", Value: object.Int(99)})); err != nil {
		t.Fatal(err)
	}
	sv, _ := staged.Deref(d1)
	n, _ := sv.(*object.Tuple).Get("n")
	if n != object.Int(99) {
		t.Errorf("staged value = %s", sv)
	}
	bv, _ := in.Deref(d1)
	bn, _ := bv.(*object.Tuple).Get("n")
	if bn != object.Int(1) {
		t.Errorf("base value mutated: %s", bv)
	}
}

// TestCOWFlattenBoundsDepth loads through many Begin generations and
// checks the chain is bounded and the contents survive flattening intact.
func TestCOWFlattenBoundsDepth(t *testing.T) {
	in := NewInstance(cowSchema(t))
	var oids []object.OID
	for i := 0; i < 4*maxCOWDepth; i++ {
		staged := in.Begin()
		oids = append(oids, newDoc(t, staged, i))
		vals := make([]object.Value, len(oids))
		for j, o := range oids {
			vals[j] = o
		}
		if err := staged.SetRoot("Docs", object.NewList(vals...)); err != nil {
			t.Fatal(err)
		}
		in = staged // publish
		if in.Depth() > maxCOWDepth {
			t.Fatalf("generation %d: depth %d exceeds bound %d", i, in.Depth(), maxCOWDepth)
		}
	}
	if in.NumObjects() != 4*maxCOWDepth {
		t.Errorf("NumObjects = %d", in.NumObjects())
	}
	ext := in.Extent("Doc")
	if len(ext) != 4*maxCOWDepth {
		t.Fatalf("extent = %d oids", len(ext))
	}
	for i, o := range ext {
		if o != oids[i] {
			t.Fatalf("extent[%d] = %s, want %s (creation order must survive flatten)", i, o, oids[i])
		}
		v, ok := in.Deref(o)
		if !ok {
			t.Fatalf("Deref(%s) lost after flatten", o)
		}
		n, _ := v.(*object.Tuple).Get("n")
		if n != object.Int(i) {
			t.Errorf("ν(%s) = %s, want n=%d", o, v, i)
		}
	}
	if errs := in.Check(); len(errs) != 0 {
		t.Errorf("Check after %d generations: %v", 4*maxCOWDepth, errs)
	}
	if st := in.Stats(); st.Objects != 4*maxCOWDepth || st.RootValues != 1 {
		t.Errorf("Stats = %+v", st)
	}
}

// TestCOWMethodsAcrossLayers checks μ resolution through the chain.
func TestCOWMethodsAcrossLayers(t *testing.T) {
	in := NewInstance(cowSchema(t))
	d1 := newDoc(t, in, 1)
	if err := in.BindMethod("Doc", "n2", func(inst *Instance, recv object.OID, _ []object.Value) (object.Value, error) {
		v, _ := inst.Deref(recv)
		n, _ := v.(*object.Tuple).Get("n")
		return object.Int(int(n.(object.Int)) * 2), nil
	}); err != nil {
		t.Fatal(err)
	}
	staged := in.Begin()
	if !staged.HasMethodNamed("n2") {
		t.Error("HasMethodNamed must see base-layer methods")
	}
	got, err := staged.Invoke(d1, "n2")
	if err != nil {
		t.Fatal(err)
	}
	if got != object.Int(2) {
		t.Errorf("Invoke = %s", got)
	}
}

// TestSchemaCloneIsolatesRoots checks that declaring a root on a cloned
// schema leaves the original untouched and moves only the clone's
// version.
func TestSchemaCloneIsolatesRoots(t *testing.T) {
	s := cowSchema(t)
	v0 := s.Version()
	c := s.Clone()
	if c.Version() != v0 {
		t.Errorf("clone version = %d, want %d", c.Version(), v0)
	}
	if err := c.AddRoot("extra", object.Class("Doc")); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.RootType("extra"); ok {
		t.Error("AddRoot on clone leaked into original")
	}
	if _, ok := c.RootType("extra"); !ok {
		t.Error("clone missing its own root")
	}
	if s.Version() != v0 {
		t.Errorf("original version moved to %d", s.Version())
	}
	if c.Version() != v0+1 {
		t.Errorf("clone version = %d, want %d", c.Version(), v0+1)
	}
	// The hierarchy is shared: both see the classes.
	if !c.Hierarchy().Has("Doc") {
		t.Error("clone lost the hierarchy")
	}
}

// TestSnapshotPinsEpoch checks the Snapshot accessor.
func TestSnapshotPinsEpoch(t *testing.T) {
	in := NewInstance(cowSchema(t))
	snap := in.Snapshot()
	staged := in.Begin()
	if snap.Epoch != 0 || snap.Inst != in {
		t.Errorf("snapshot = %+v", snap)
	}
	if staged.Snapshot().Epoch != 1 {
		t.Errorf("staged snapshot epoch = %d", staged.Snapshot().Epoch)
	}
}

// TestCOWSaveRoundTrip checks that snapshot persistence sees through the
// layer chain: a chained instance saves and reloads to the same contents.
func TestCOWSaveRoundTrip(t *testing.T) {
	in := NewInstance(cowSchema(t))
	for i := 0; i < 3; i++ {
		staged := in.Begin()
		o := newDoc(t, staged, i)
		if err := staged.SetRoot("Docs", object.NewList(o)); err != nil {
			t.Fatal(err)
		}
		in = staged
	}
	var buf bytes.Buffer
	if err := Save(&buf, in); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumObjects() != in.NumObjects() {
		t.Errorf("reloaded objects = %d, want %d", got.NumObjects(), in.NumObjects())
	}
	for _, o := range in.Objects() {
		want, _ := in.Deref(o)
		v, ok := got.Deref(o)
		if !ok || !object.Equal(v, want) {
			t.Errorf("reloaded ν(%s) = %v, want %s", o, v, want)
		}
	}
}

// TestDiscardReleasesLayer pins the eager-release contract: Discard drops
// the staged layer's maps and its base reference, so an abandoned load's
// staging is garbage immediately — not retained until the next successful
// load happens to replace the pointer.
func TestDiscardReleasesLayer(t *testing.T) {
	in := NewInstance(cowSchema(t))
	staged := in.Begin()
	newDoc(t, staged, 1)
	staged.Discard()
	if staged.base != nil {
		t.Error("Discard kept the base reference")
	}
	if staged.class != nil || staged.values != nil || staged.extent != nil || staged.roots != nil || staged.method != nil {
		t.Error("Discard kept staged maps alive")
	}
	// The base is untouched and stageable again.
	if in.NumObjects() != 0 {
		t.Errorf("base NumObjects = %d after discard", in.NumObjects())
	}
	again := in.Begin()
	newDoc(t, again, 2)
	if again.NumObjects() != 1 {
		t.Errorf("restaged NumObjects = %d", again.NumObjects())
	}
}

// TestSetEpoch pins the recovery re-anchoring hook: a deserialized
// instance continues the pre-crash epoch sequence.
func TestSetEpoch(t *testing.T) {
	in := NewInstance(cowSchema(t))
	in.SetEpoch(41)
	if in.Epoch() != 41 {
		t.Fatalf("Epoch = %d, want 41", in.Epoch())
	}
	if got := in.Begin().Epoch(); got != 42 {
		t.Errorf("Begin after SetEpoch: epoch = %d, want 42", got)
	}
}
