package oql

import (
	"container/list"
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"sgmldb/internal/algebra"
	"sgmldb/internal/calculus"
	"sgmldb/internal/faultpoint"
	"sgmldb/internal/object"
	"sgmldb/internal/store"
	"sgmldb/internal/text"
)

// fpRecompile lets chaos tests fail a plan (re)compilation — the
// cache-miss path a schema change forces every cached plan through.
var fpRecompile = faultpoint.New("oql/plan-recompile")

// State is one published (instance, text index) pair: the consistent
// snapshot a query pins at entry. The facade publishes a new State after
// every successful load, so a query never sees an instance whose text
// index lags it (or vice versa).
type State struct {
	Snap  store.Snapshot
	Index *text.Index
}

// Engine executes O₂SQL queries over a calculus environment: parse →
// typecheck (Section 4.2) → lower to the calculus (Section 5.2) →
// evaluate, either naively or through the algebraization of Section 5.4.
//
// Concurrency: the query methods (Query, QueryContext, Rows, RowsContext,
// Prepare and prepared Run/Rows) are safe for concurrent use. When a
// State has been published (Publish), every query pins the state current
// at its start and evaluates entirely against it, so writers staging the
// next version never block or corrupt a reader. Without a published
// state the engine falls back to Env.Inst/Index directly, under the
// single-writer/multi-reader discipline. The configuration fields
// (UseAlgebra, MaxBranches, Workers, …) must not be changed while
// queries are in flight.
type Engine struct {
	Env *calculus.Env
	// Index, when set, serves as the full-text access path for contains.
	// It is the fallback when no State has been published.
	Index *text.Index
	// state is the atomically published snapshot (nil until Publish).
	state atomic.Pointer[State]
	// UseAlgebra evaluates through the (★) algebra plans instead of the
	// naive calculus interpreter.
	UseAlgebra bool
	// SkipTypecheck disables the static Section 4.2 checks.
	SkipTypecheck bool
	// MaxBranches bounds the (★) expansion (0 = default).
	MaxBranches int
	// Workers bounds intra-query parallelism of algebra scans:
	// 0 uses GOMAXPROCS, 1 evaluates serially, n > 1 uses n goroutines.
	Workers int
	// PlanCacheSize bounds the plan cache (0 = DefaultPlanCacheSize). A
	// long-lived serving process sees unbounded query-text churn; the
	// cache keeps the hot plans and evicts the least recently used.
	PlanCacheSize int
	// Budget bounds each query's run-time cost (rows scanned, estimated
	// bytes materialised, wall-clock duration); the zero value is
	// unlimited. Every execution gets its own meter, so one query
	// exhausting its budget fails with calculus.ErrBudgetExceeded
	// without touching other in-flight queries.
	Budget calculus.Budget

	// planHits / planMisses count plan-cache lookups (a stale entry whose
	// schema moved counts as a miss). Served by /v1/stats; atomics because
	// every querying goroutine touches them.
	planHits   atomic.Uint64
	planMisses atomic.Uint64

	// mu guards the plan cache; queries from many goroutines share it.
	mu sync.RWMutex
	// plans memoises compiled algebra plans per query source, so repeated
	// queries pay the (★) analysis once. Entries record the schema
	// version they were compiled against and are recompiled when the
	// schema moves (a document load can add persistence roots, which
	// changes the candidate valuations of unbound variables). The cache
	// is a bounded LRU: entries is the by-source index into order, whose
	// front is the most recently used plan.
	plans struct {
		entries map[string]*list.Element
		order   list.List // of *planEntry
	}
}

// planEntry is one plan cache entry with its compilation version.
type planEntry struct {
	src     string
	plan    *algebra.Plan
	version uint64
}

// DefaultPlanCacheSize is the plan-cache bound when PlanCacheSize is 0.
const DefaultPlanCacheSize = 128

// New builds an engine over an environment.
func New(env *calculus.Env) *Engine { return &Engine{Env: env} }

// Publish atomically installs a new (instance, index) state. In-flight
// queries finish against the state they pinned; queries starting after
// the call see the new one. The instance and index published must never
// be mutated again (the copy-on-write discipline: stage into fresh
// layers instead).
func (e *Engine) Publish(st State) { e.state.Store(&st) }

// State returns the currently published state, falling back to the
// engine's direct Env.Inst and Index fields when nothing has been
// published (the single-writer setup used by tests and one-shot tools).
func (e *Engine) State() State {
	if st := e.state.Load(); st != nil {
		return *st
	}
	var snap store.Snapshot
	if e.Env.Inst != nil {
		snap = e.Env.Inst.Snapshot()
	}
	return State{Snap: snap, Index: e.Index}
}

// pin captures the environment and index for one query: every evaluation
// step of the query uses this pair, so a load published mid-query is
// invisible to it.
func (e *Engine) pin() (*calculus.Env, *text.Index) {
	if st := e.state.Load(); st != nil {
		return e.Env.WithInstance(st.Snap.Inst), st.Index
	}
	return e.Env, e.Index
}

// schemaVersionOf reports the pinned schema's mutation counter (0 when
// the environment has no instance).
func schemaVersionOf(env *calculus.Env) uint64 {
	if env.Inst == nil {
		return 0
	}
	return env.Inst.Schema().Version()
}

// budgetEnv derives the per-execution environment carrying a fresh cost
// meter for the given budget; with no budget the environment is returned
// as is (nil meter, no-op charges).
func budgetEnv(env *calculus.Env, b calculus.Budget) *calculus.Env {
	if m := calculus.NewMeter(b); m != nil {
		return env.WithMeter(m)
	}
	return env
}

// workers resolves the Workers setting to a concrete pool size.
func (e *Engine) workers() int {
	if e.Workers == 0 {
		return runtime.GOMAXPROCS(0)
	}
	return e.Workers
}

// newCtx builds one plan-execution context over the pinned environment,
// carrying ctx for cancellation.
func (e *Engine) newCtx(ctx context.Context, env *calculus.Env, ix *text.Index) *algebra.Ctx {
	c := algebra.NewCtx(env.WithContext(ctx))
	c.Index = ix
	c.Workers = e.workers()
	return c
}

// Query parses, checks and evaluates a query, returning its value: a set
// for select-from-where and bare pattern queries, the computed value for
// other expressions.
func (e *Engine) Query(src string) (object.Value, error) {
	return e.QueryContext(context.Background(), src)
}

// QueryContext is Query under a context: evaluation observes ctx and
// returns its error promptly after cancellation.
func (e *Engine) QueryContext(ctx context.Context, src string) (object.Value, error) {
	return e.QueryBudget(ctx, src, e.Budget)
}

// QueryBudget is QueryContext under an explicit per-execution budget,
// replacing the engine-level Budget for this one call. The facade derives
// the effective budget from its per-call options and threads it through
// here; the zero budget is unlimited.
func (e *Engine) QueryBudget(ctx context.Context, src string, b calculus.Budget) (object.Value, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	env, ix := e.pin()
	env = budgetEnv(env, b)
	ast, err := e.parseCheck(env, src)
	if err != nil {
		return nil, err
	}
	switch x := ast.(type) {
	case SelectExpr:
		res, err := e.runCached(ctx, env, ix, src, ast)
		if err != nil {
			return nil, err
		}
		return res.ToSet(), nil
	case PathExpr:
		if patternHasVars(x.Elems) {
			res, err := e.runCached(ctx, env, ix, src, ast)
			if err != nil {
				return nil, err
			}
			return res.ToSet(), nil
		}
		return e.value(ctx, env, ast)
	default:
		return e.value(ctx, env, ast)
	}
}

// Rows evaluates a select or pattern query and returns the raw result
// (head variables with their sorted bindings).
func (e *Engine) Rows(src string) (*calculus.Result, error) {
	return e.RowsContext(context.Background(), src)
}

// RowsContext is Rows under a context.
func (e *Engine) RowsContext(ctx context.Context, src string) (*calculus.Result, error) {
	return e.RowsBudget(ctx, src, e.Budget)
}

// RowsBudget is RowsContext under an explicit per-execution budget (see
// QueryBudget).
func (e *Engine) RowsBudget(ctx context.Context, src string, b calculus.Budget) (*calculus.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	env, ix := e.pin()
	env = budgetEnv(env, b)
	ast, err := e.parseCheck(env, src)
	if err != nil {
		return nil, err
	}
	return e.runCached(ctx, env, ix, src, ast)
}

// parseCheck parses the source and runs the static checks against the
// pinned schema.
func (e *Engine) parseCheck(env *calculus.Env, src string) (Expr, error) {
	ast, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if !e.SkipTypecheck && env.Inst != nil {
		if err := Typecheck(env.Inst.Schema(), ast); err != nil {
			return nil, err
		}
	}
	return ast, nil
}

// Lower exposes the calculus translation of a query (for inspection and
// for the benchmarks).
func (e *Engine) Lower(src string) (*calculus.Query, error) {
	ast, err := Parse(src)
	if err != nil {
		return nil, err
	}
	env, _ := e.pin()
	return Lower(ast, rootNamesOf(env))
}

// Plan exposes the algebra plan of a query.
func (e *Engine) Plan(src string) (*algebra.Plan, error) {
	ast, err := Parse(src)
	if err != nil {
		return nil, err
	}
	env, ix := e.pin()
	q, err := Lower(ast, rootNamesOf(env))
	if err != nil {
		return nil, err
	}
	return algebra.Translate(env, q, algebra.Options{Index: ix, MaxBranches: e.MaxBranches})
}

func rootNamesOf(env *calculus.Env) []string {
	if env.Inst == nil {
		return nil
	}
	return env.Inst.Schema().Roots()
}

// run lowers and evaluates a query expression against the pinned state.
func (e *Engine) run(ctx context.Context, env *calculus.Env, ix *text.Index, ast Expr) (*calculus.Result, error) {
	q, err := Lower(ast, rootNamesOf(env))
	if err != nil {
		return nil, err
	}
	if e.UseAlgebra {
		plan, err := algebra.Translate(env, q, algebra.Options{Index: ix, MaxBranches: e.MaxBranches})
		if err != nil {
			return nil, err
		}
		return plan.Run(e.newCtx(ctx, env, ix))
	}
	return env.EvalContext(ctx, q)
}

// runCached is run with plan caching keyed by the query source.
func (e *Engine) runCached(ctx context.Context, env *calculus.Env, ix *text.Index, src string, ast Expr) (*calculus.Result, error) {
	if !e.UseAlgebra {
		return e.run(ctx, env, ix, ast)
	}
	plan, err := e.cachedPlan(env, ix, src, ast)
	if err != nil {
		return nil, err
	}
	return plan.Run(e.newCtx(ctx, env, ix))
}

// cachedPlan returns the compiled plan for src, compiling (or recompiling,
// if the schema changed underneath the cached entry) outside the lock.
// Plans depend only on the schema — root *bindings* are resolved at run
// time — so a plan compiled against one schema version serves every
// instance version sharing that schema.
func (e *Engine) cachedPlan(env *calculus.Env, ix *text.Index, src string, ast Expr) (*algebra.Plan, error) {
	version := schemaVersionOf(env)
	if plan, ok := e.lookupPlan(src, version); ok {
		return plan, nil
	}
	if err := fpRecompile.Hit(); err != nil {
		return nil, err
	}
	q, err := Lower(ast, rootNamesOf(env))
	if err != nil {
		return nil, err
	}
	plan, err := algebra.Translate(env, q, algebra.Options{Index: ix, MaxBranches: e.MaxBranches})
	if err != nil {
		return nil, err
	}
	e.storePlan(src, plan, version)
	return plan, nil
}

// planCacheCap resolves the configured cache bound.
func (e *Engine) planCacheCap() int {
	if e.PlanCacheSize > 0 {
		return e.PlanCacheSize
	}
	return DefaultPlanCacheSize
}

// lookupPlan returns the cached plan for src if it was compiled against
// the current schema version, marking it most recently used. A stale
// entry (schema moved underneath it) is dropped so the recompiled plan
// re-enters at the front.
func (e *Engine) lookupPlan(src string, version uint64) (*algebra.Plan, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	el, ok := e.plans.entries[src]
	if !ok {
		e.planMisses.Add(1)
		return nil, false
	}
	ent := el.Value.(*planEntry)
	if ent.version != version {
		e.plans.order.Remove(el)
		delete(e.plans.entries, src)
		e.planMisses.Add(1)
		return nil, false
	}
	e.plans.order.MoveToFront(el)
	e.planHits.Add(1)
	return ent.plan, true
}

// PlanCacheStats reports cumulative plan-cache lookups: hits served from
// the cache and misses that forced a (re)compilation.
func (e *Engine) PlanCacheStats() (hits, misses uint64) {
	return e.planHits.Load(), e.planMisses.Load()
}

// storePlan inserts (or refreshes) a compiled plan at the front of the
// LRU order, evicting from the back beyond the cache bound.
func (e *Engine) storePlan(src string, plan *algebra.Plan, version uint64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.plans.entries == nil {
		e.plans.entries = map[string]*list.Element{}
	}
	if el, ok := e.plans.entries[src]; ok {
		ent := el.Value.(*planEntry)
		ent.plan, ent.version = plan, version
		e.plans.order.MoveToFront(el)
		return
	}
	e.plans.entries[src] = e.plans.order.PushFront(&planEntry{src: src, plan: plan, version: version})
	for e.plans.order.Len() > e.planCacheCap() {
		back := e.plans.order.Back()
		e.plans.order.Remove(back)
		delete(e.plans.entries, back.Value.(*planEntry).src)
	}
}

// PlanCacheLen reports the number of cached plans.
func (e *Engine) PlanCacheLen() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.plans.order.Len()
}

// planCacheKeys lists the cached query sources in recency order (most
// recent first); test hook.
func (e *Engine) planCacheKeys() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	var out []string
	for el := e.plans.order.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*planEntry).src)
	}
	return out
}

// Prepared is a query whose front-end work — parsing, typechecking,
// lowering to the calculus and (in algebra mode) plan compilation — has
// been done once. Run and Rows replay only the evaluation. A Prepared is
// safe for concurrent use; it recompiles its plan transparently if the
// schema has changed since preparation (e.g. after a document load).
type Prepared struct {
	engine *Engine
	src    string
	ast    Expr
	bare   bool // bare expression: evaluated directly, no row form

	mu      sync.RWMutex
	lowered *calculus.Query
	plan    *algebra.Plan // nil in naive-calculus mode
	version uint64
}

// Prepare parses, typechecks and compiles a query for repeated execution.
func (e *Engine) Prepare(src string) (*Prepared, error) {
	env, ix := e.pin()
	ast, err := e.parseCheck(env, src)
	if err != nil {
		return nil, err
	}
	p := &Prepared{engine: e, src: src, ast: ast}
	switch x := ast.(type) {
	case SelectExpr:
	case PathExpr:
		if !patternHasVars(x.Elems) {
			p.bare = true
			return p, nil
		}
	default:
		p.bare = true
		return p, nil
	}
	if err := p.compile(env, ix, schemaVersionOf(env)); err != nil {
		return nil, err
	}
	return p, nil
}

// compile (re)lowers the query and, in algebra mode, rebuilds its plan,
// recording the schema version it compiled against.
func (p *Prepared) compile(env *calculus.Env, ix *text.Index, version uint64) error {
	_, _, err := p.recompile(env, ix, version)
	return err
}

// recompile does the compile work under the statement lock: the lowerer
// rewrites the shared AST in place, so two racing executions must not
// lower it concurrently. The double-check under the lock makes the loser
// of the race reuse the winner's result instead of redoing it.
func (p *Prepared) recompile(env *calculus.Env, ix *text.Index, version uint64) (*calculus.Query, *algebra.Plan, error) {
	e := p.engine
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.lowered != nil && p.version == version && (p.plan != nil) == e.UseAlgebra {
		return p.lowered, p.plan, nil
	}
	if err := fpRecompile.Hit(); err != nil {
		return nil, nil, err
	}
	q, err := Lower(p.ast, rootNamesOf(env))
	if err != nil {
		return nil, nil, err
	}
	var plan *algebra.Plan
	if e.UseAlgebra {
		plan, err = algebra.Translate(env, q, algebra.Options{Index: ix, MaxBranches: e.MaxBranches})
		if err != nil {
			return nil, nil, err
		}
	}
	p.lowered, p.plan, p.version = q, plan, version
	return q, plan, nil
}

// Source returns the query text the statement was prepared from.
func (p *Prepared) Source() string { return p.src }

// Run evaluates the prepared query and returns its value, like
// Engine.QueryContext but without re-doing the front-end work.
func (p *Prepared) Run(ctx context.Context) (object.Value, error) {
	return p.RunBudget(ctx, p.engine.Budget)
}

// RunBudget is Run under an explicit per-execution budget (see
// Engine.QueryBudget).
func (p *Prepared) RunBudget(ctx context.Context, b calculus.Budget) (object.Value, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if p.bare {
		env, _ := p.engine.pin()
		return p.engine.value(ctx, budgetEnv(env, b), p.ast)
	}
	res, err := p.rows(ctx, b)
	if err != nil {
		return nil, err
	}
	return res.ToSet(), nil
}

// Rows evaluates the prepared query and returns the raw result. It
// reports an error for bare expressions that have no row form.
func (p *Prepared) Rows(ctx context.Context) (*calculus.Result, error) {
	return p.RowsBudget(ctx, p.engine.Budget)
}

// RowsBudget is Rows under an explicit per-execution budget (see
// Engine.QueryBudget).
func (p *Prepared) RowsBudget(ctx context.Context, b calculus.Budget) (*calculus.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if p.bare {
		return nil, fmt.Errorf("oql: prepared query %q has no row form", p.src)
	}
	return p.rows(ctx, b)
}

func (p *Prepared) rows(ctx context.Context, b calculus.Budget) (*calculus.Result, error) {
	e := p.engine
	env, ix := e.pin()
	env = budgetEnv(env, b)
	version := schemaVersionOf(env)
	p.mu.RLock()
	q, plan := p.lowered, p.plan
	fresh := q != nil && p.version == version && (plan != nil) == e.UseAlgebra
	p.mu.RUnlock()
	if !fresh {
		// The schema moved since compilation (a document load can add
		// persistence roots, changing the candidate valuations of unbound
		// variables), or the engine's evaluation mode was switched:
		// recompile against the current state.
		var err error
		q, plan, err = p.recompile(env, ix, version)
		if err != nil {
			return nil, err
		}
	}
	if plan == nil {
		return env.EvalContext(ctx, q)
	}
	return plan.Run(e.newCtx(ctx, env, ix))
}

// value evaluates a bare (non-select) expression directly. A path step
// that does not apply to a named instance surfaces as the execution-time
// type error of Section 4.2 ("my_section.subsectns will return a type
// error detected at execution time").
func (e *Engine) value(ctx context.Context, env *calculus.Env, ast Expr) (object.Value, error) {
	lw := &lowerer{}
	if roots := rootNamesOf(env); roots != nil {
		lw.roots = map[string]bool{}
		for _, r := range roots {
			lw.roots[r] = true
		}
	}
	t, err := lw.term(ast, scope{})
	if err != nil {
		return nil, err
	}
	v, err := env.WithContext(ctx).Term(t, calculus.Valuation{})
	if calculus.IsNoSuchPath(err) {
		return nil, fmt.Errorf("%w: execution-time: %w", ErrTypecheck, err)
	}
	return v, err
}
