package dtdmap

import (
	"strings"
	"testing"

	"sgmldb/internal/object"
	"sgmldb/internal/sgml"
)

// crossrefDTD exercises IDREFS (plural) fixups and their export.
const crossrefDTD = `<!DOCTYPE biblio [
<!ELEMENT biblio - - (entry+, survey)>
<!ELEMENT entry - O (#PCDATA)>
<!ATTLIST entry key ID #REQUIRED>
<!ELEMENT survey - O (#PCDATA)>
<!ATTLIST survey cites IDREFS #IMPLIED>
]>`

func TestIDREFSFixupsAndExport(t *testing.T) {
	dtd, err := sgml.ParseDTD(crossrefDTD)
	if err != nil {
		t.Fatal(err)
	}
	m, err := MapDTD(dtd)
	if err != nil {
		t.Fatal(err)
	}
	l := NewLoader(m)
	doc, err := sgml.ParseDocument(dtd, `<biblio>
<entry key="k1">First work.
<entry key="k2">Second work.
<entry key="k3">Third work.
<survey cites="k1 k3">A survey citing two works.
</biblio>`)
	if err != nil {
		t.Fatal(err)
	}
	oid, err := l.Load(doc)
	if err != nil {
		t.Fatal(err)
	}
	inst := l.Instance
	if errs := inst.Check(); len(errs) != 0 {
		t.Fatalf("instance invalid: %v", errs)
	}
	// The survey's cites attribute holds the two entry oids.
	surveys := inst.Extent("Survey")
	if len(surveys) != 1 {
		t.Fatal("survey extent")
	}
	sv, _ := inst.Deref(surveys[0])
	cites, _ := sv.(*object.Tuple).Get("cites")
	cl := cites.(*object.List)
	if cl.Len() != 2 {
		t.Fatalf("cites = %s", cites)
	}
	entries := inst.Extent("Entry")
	// Each cited entry's key field lists the survey as referrer.
	citedCount := 0
	for _, e := range entries {
		ev, _ := inst.Deref(e)
		key, _ := ev.(*object.Tuple).Get("key")
		if refs := key.(*object.List); refs.Len() > 0 {
			citedCount++
			if !object.Equal(refs.At(0), surveys[0]) {
				t.Errorf("referrer = %s", refs.At(0))
			}
		}
	}
	if citedCount != 2 {
		t.Errorf("cited entries = %d", citedCount)
	}
	// Export reconstructs the IDREFS attribute.
	out, err := Export(m, inst, oid)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `cites="id1 id2"`) && !strings.Contains(out, `cites="id2 id1"`) {
		t.Errorf("cites not reconstructed:\n%s", out)
	}
	// And the export round-trips.
	doc2, err := sgml.ParseDocument(dtd, out)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, out)
	}
	m2, _ := MapDTD(dtd)
	l2 := NewLoader(m2)
	if _, err := l2.Load(doc2); err != nil {
		t.Fatalf("re-load: %v", err)
	}
	if errs := l2.Instance.Check(); len(errs) != 0 {
		t.Fatalf("re-loaded invalid: %v", errs)
	}
}

func TestAndGroupTooLarge(t *testing.T) {
	// An "&" group beyond the permutation bound is rejected with a clear
	// message (factorial expansion).
	decl := "<!ELEMENT big - - (a & b & c & d & e & f)>"
	for _, e := range []string{"a", "b", "c", "d", "e", "f"} {
		decl += "<!ELEMENT " + e + " - O (#PCDATA)>"
	}
	dtd, err := sgml.ParseDTD(decl)
	if err != nil {
		t.Fatal(err)
	}
	_, err = MapDTD(dtd)
	if err == nil || !strings.Contains(err.Error(), "permutations") {
		t.Errorf("oversized & group must be rejected, got %v", err)
	}
}
