package sgmldb

import (
	"fmt"

	"sgmldb/internal/object"
	"sgmldb/internal/oql"
	"sgmldb/internal/sgml"
	"sgmldb/internal/wal"
)

// Log-shipping replication (DESIGN.md §10) and failover (§12). A primary
// with a data directory exposes its durable history twice over: the
// newest checkpoint file as a bootstrap image (NewestCheckpointFile) and
// the retained log as raw frames (FeedFrames). A follower — opened with
// OpenFollower — applies that history through the same deterministic
// commit path recovery replays through, so a follower that has applied
// sequence S sits on exactly the epoch the primary published at S. The
// follower is read-only for clients: queries serve lock-free from its
// replayed COW snapshot, loads and namings fail with ErrReadOnly.
//
// Every record carries the term (promotion epoch) it was written under.
// A *durable* follower (OpenFollower + WithDataDir) additionally appends
// each shipped record to its own write-ahead log, so its local history is
// byte-equivalent to the primary's — which is what makes Promote a local
// operation: the whole history is already on this node's disk.

// OpenFollower compiles the DTD and opens a read-only database that is
// advanced exclusively through ApplyCheckpoint/ApplyRecord with records
// shipped from a primary's log. Without WithDataDir the follower is
// ephemeral: a restart re-bootstraps from the primary. With WithDataDir
// it keeps a local log and checkpoints of the shipped history — it
// recovers from its own directory like a primary would, and it is
// eligible for Promote.
func OpenFollower(dtdSource string, opts ...Option) (*Database, error) {
	return open(dtdSource, true, opts)
}

// IsFollower reports whether the database currently applies a primary's
// log (opened with OpenFollower and not yet promoted).
func (db *Database) IsFollower() bool { return db.follower.Load() }

// Term is the promotion epoch this node currently writes (or applies)
// under. A fresh durable database starts at term 1; every Promote — here
// or observed from the feed — raises it. A non-durable primary, which
// cannot take part in replication, reports 0.
func (db *Database) Term() uint64 { return db.term.Load() }

// Promotions counts the term raises this node has observed since open:
// its own Promote calls plus promotions applied from shipped records and
// bootstrapped checkpoints.
func (db *Database) Promotions() uint64 { return db.promotions.Load() }

// ObserveRemoteTerm records a term reported by a remote node (a follower
// polling our feed carries its own term on every request). It only moves
// forward. Once a remote term exceeds our own, this node has been
// superseded by a promotion elsewhere: it fences itself — every later
// write fails with ErrStaleTerm — so a partitioned old primary can never
// extend a history the cluster has moved past.
func (db *Database) ObserveRemoteTerm(term uint64) {
	for {
		cur := db.fencedTerm.Load()
		if term <= cur || db.fencedTerm.CompareAndSwap(cur, term) {
			return
		}
	}
}

// fencedErr reports the fencing error primary writes fail with once a
// higher remote term was observed, nil while this node is still the
// authority. Followers are never fenced — they apply under the shipped
// record's own term. Called under loadMu, so a fence observed before the
// check is guaranteed to stop the commit.
func (db *Database) fencedErr() error {
	if db.follower.Load() {
		return nil
	}
	if ft := db.fencedTerm.Load(); ft > db.term.Load() {
		return fmt.Errorf("%w: this primary is at term %d, a remote reported term %d", ErrStaleTerm, db.term.Load(), ft)
	}
	return nil
}

// raiseTerm adopts a higher term, counting the promotion it evidences.
// Caller holds loadMu.
func (db *Database) raiseTerm(term uint64) {
	if term > db.term.Load() {
		db.term.Store(term)
		db.promotions.Add(1)
	}
}

// Promote seals replay and turns this follower into a writable primary
// at a fresh term. It requires a durable follower (WithDataDir): the
// shipped history is then already in the local log, so promotion is one
// local append — a term-bump record at max(own term, highest remote term
// observed)+1 — followed by a synchronous checkpoint so rejoining
// followers always find a bootstrap image at the new term. After Promote
// returns, loads and namings succeed locally and the replication feed
// serves the new term; the caller must stop the follower tail loop (the
// service layer's promote endpoint does).
func (db *Database) Promote() (uint64, error) {
	if !db.follower.Load() {
		return 0, fmt.Errorf("%w: promote", ErrNotFollower)
	}
	if db.walLog == nil {
		return 0, fmt.Errorf("%w: promotion requires a durable follower (WithDataDir)", ErrNotPrimary)
	}
	db.loadMu.Lock()
	if db.walClosed {
		db.loadMu.Unlock()
		return 0, fmt.Errorf("sgmldb: promote: database is closed")
	}
	if err := db.degradedErr(); err != nil {
		db.loadMu.Unlock()
		return 0, err
	}
	newTerm := db.term.Load()
	if ft := db.fencedTerm.Load(); ft > newTerm {
		newTerm = ft
	}
	newTerm++
	if err := db.walLog.Append(wal.Record{Kind: wal.KindTerm, Term: newTerm}); err != nil {
		db.loadMu.Unlock()
		return 0, db.wrapDegraded(err)
	}
	db.raiseTerm(newTerm)
	db.follower.Store(false)
	// The new primary checkpoints immediately: a follower re-anchoring
	// after the failover (the deposed primary included) may hold an
	// unshipped suffix from the old term, and the term-stamped checkpoint
	// is what lets its bootstrap truncate that suffix at the boundary.
	st := db.state()
	ck := db.captureCheckpoint(st.Snap.Inst, st.Index)
	db.recordsSinceCkpt = 0
	db.loadMu.Unlock()
	if err := db.writeCheckpoint(ck); err != nil {
		// The promotion itself is durable (the term bump is in the log);
		// a failed checkpoint only delays rejoiners, like any other
		// checkpoint failure. It is already counted in the telemetry.
		return newTerm, nil
	}
	return newTerm, nil
}

// AppliedSeq is the sequence number of the last primary log record this
// follower has applied (0 before any). On a non-follower it is 0.
func (db *Database) AppliedSeq() uint64 { return db.appliedSeq.Load() }

// PrimarySeq is the newest primary log sequence the follower has observed
// (from feed responses), whether or not it has applied that far yet;
// PrimarySeq-AppliedSeq is the replication lag in records.
func (db *Database) PrimarySeq() uint64 { return db.primarySeq.Load() }

// ObservePrimarySeq records the newest primary log sequence seen by the
// replication client. It only moves forward.
func (db *Database) ObservePrimarySeq(seq uint64) {
	for {
		cur := db.primarySeq.Load()
		if seq <= cur || db.primarySeq.CompareAndSwap(cur, seq) {
			return
		}
	}
}

// ObserveRebootstrap counts one checkpoint re-bootstrap performed by the
// replication client, for Stats and health.
func (db *Database) ObserveRebootstrap() { db.rebootstrap.Add(1) }

// Rebootstraps is the number of checkpoint bootstraps the replication
// client has performed against this follower since open.
func (db *Database) Rebootstraps() uint64 { return db.rebootstrap.Load() }

// SetBreakerOpen publishes the replication client's circuit-breaker
// state, for Stats and health.
func (db *Database) SetBreakerOpen(open bool) { db.breakerOpen.Store(open) }

// BreakerOpen reports whether the replication client's bootstrap circuit
// breaker is currently open.
func (db *Database) BreakerOpen() bool { return db.breakerOpen.Load() }

// ApplyCheckpoint installs a primary checkpoint wholesale — the follower
// bootstrap path, used when the feed reports the follower's anchor was
// truncated away (SEQ_TRUNCATED) or divergent at a promotion boundary
// (STALE_TERM). A checkpoint at or behind the applied sequence is a
// no-op *within the same term*, so a bootstrap racing normal tailing can
// never rewind the follower; a checkpoint at a higher term installs
// unconditionally — that is the term-aware truncation of an unshipped
// suffix a deposed primary carries when it rejoins as a follower. A
// checkpoint from a term *behind* the follower's is rejected with
// ErrStaleTerm: installing it would adopt a deposed primary's forked
// history (and on a durable follower durably discard newer-term records).
// On a durable follower the checkpoint is also written locally and the
// local log reset to the checkpoint's (seq, term), so the stale suffix is
// gone from disk, not just from memory.
func (db *Database) ApplyCheckpoint(ck *wal.Checkpoint) error {
	if !db.follower.Load() {
		return fmt.Errorf("%w: ApplyCheckpoint", ErrNotFollower)
	}
	if ck.DTD != db.dtdSource {
		return fmt.Errorf("sgmldb: checkpoint is for a different DTD")
	}
	db.loadMu.Lock()
	defer db.loadMu.Unlock()
	if ck.Seq <= db.appliedSeq.Load() && ck.Term <= db.term.Load() {
		return nil
	}
	if ck.Term < db.term.Load() {
		return fmt.Errorf("%w: checkpoint carries term %d, follower history is already at term %d",
			ErrStaleTerm, ck.Term, db.term.Load())
	}
	if db.walLog != nil {
		// Reset before writing the checkpoint: a crash between the two
		// leaves an empty log plus the older checkpoint — a rewound but
		// recoverable follower. The reverse order could leave the stale
		// suffix alive behind a newer checkpoint.
		if err := db.walLog.Reset(ck.Seq, ck.Term); err != nil {
			return db.wrapDegraded(err)
		}
		if err := db.writeCheckpoint(ck); err != nil {
			return err
		}
		db.recordsSinceCkpt = 0
	}
	inst := ck.Inst
	inst.SetEpoch(ck.Epoch)
	docs := make([]object.OID, len(ck.Docs))
	for i, o := range ck.Docs {
		docs[i] = object.OID(o)
	}
	db.Loader.Adopt(inst, docs)
	db.Engine.Publish(oql.State{Snap: inst.Snapshot(), Index: ck.Index})
	db.appliedSeq.Store(ck.Seq)
	db.raiseTerm(ck.Term)
	db.ObservePrimarySeq(ck.Seq)
	return nil
}

// ApplyRecord applies one shipped log record through the deterministic
// replay path. Records must arrive in exact sequence order — the apply
// loop anchors its feed requests at AppliedSeq, so a gap (ErrReplicaGap)
// or a record from a superseded term (ErrStaleTerm) means the stream is
// broken and the follower must re-bootstrap rather than guess around it
// (re-applying a load would mint duplicate documents; splicing a stale
// term would fork the history). On a durable follower the record is also
// appended to the local log under its original term.
func (db *Database) ApplyRecord(rec wal.Record) error {
	if !db.follower.Load() {
		return fmt.Errorf("%w: ApplyRecord", ErrNotFollower)
	}
	db.loadMu.Lock()
	defer db.loadMu.Unlock()
	applied := db.appliedSeq.Load()
	if rec.Seq > applied+1 {
		return fmt.Errorf("%w: record %d arrived with only %d applied", ErrReplicaGap, rec.Seq, applied)
	}
	if rec.Seq != applied+1 {
		return fmt.Errorf("sgmldb: apply: record %d out of order (applied through %d)", rec.Seq, applied)
	}
	if rec.Term > 0 && rec.Term < db.term.Load() {
		return fmt.Errorf("%w: record %d carries term %d, follower is at term %d", ErrStaleTerm, rec.Seq, rec.Term, db.term.Load())
	}
	durable := db.walLog != nil
	if durable && db.walLog.Seq() != applied {
		// The local log and the applied position disagree (an interrupted
		// bootstrap); appending here would misnumber durable history.
		return fmt.Errorf("%w: local log at %d, applied position %d", ErrReplicaGap, db.walLog.Seq(), applied)
	}
	switch rec.Kind {
	case wal.KindSchema:
		if rec.Schema != db.dtdSource {
			return fmt.Errorf("sgmldb: primary log is for a different DTD")
		}
		if durable {
			if err := db.walLog.Append(rec); err != nil {
				return db.wrapDegraded(err)
			}
		}
	case wal.KindLoad:
		docs := make([]*sgml.Document, len(rec.Docs))
		for i, src := range rec.Docs {
			d, err := sgml.ParseDocument(db.Mapping.DTD, src)
			if err != nil {
				return fmt.Errorf("sgmldb: apply record %d: %w", rec.Seq, err)
			}
			docs[i] = d
		}
		if _, err := db.commitLoad(docs, rec.Docs, durable, rec.Term); err != nil {
			return fmt.Errorf("sgmldb: apply record %d: %w", rec.Seq, err)
		}
	case wal.KindName:
		if err := db.commitName(rec.Name, object.OID(rec.OID), durable, rec.Term); err != nil {
			return fmt.Errorf("sgmldb: apply record %d: %w", rec.Seq, err)
		}
	case wal.KindTerm:
		if durable {
			if err := db.walLog.Append(rec); err != nil {
				return db.wrapDegraded(err)
			}
		}
	default:
		return fmt.Errorf("sgmldb: apply record %d: unknown kind %d", rec.Seq, rec.Kind)
	}
	db.appliedSeq.Store(rec.Seq)
	db.raiseTerm(rec.Term)
	db.ObservePrimarySeq(rec.Seq)
	return nil
}

// FeedFrames returns raw committed log frames after afterSeq (at most
// roughly maxBytes, always at least one frame when any is due) together
// with the sequence number of the last frame returned. afterTerm, when
// non-zero, is the term the caller's history holds at afterSeq; a
// mismatch with this log means the caller diverged at a promotion
// boundary and is reported as ErrStaleTerm — the caller must bootstrap.
// It reports ErrSeqTruncated when afterSeq precedes the retained log —
// again a bootstrap — and ErrNotPrimary on a database without a
// write-ahead log.
func (db *Database) FeedFrames(afterSeq, afterTerm uint64, maxBytes int) ([]byte, uint64, error) {
	if db.walLog == nil {
		return nil, 0, ErrNotPrimary
	}
	return db.walLog.FramesAfter(afterSeq, afterTerm, maxBytes)
}

// FeedWatch returns the last committed log sequence and a channel closed
// when a later record commits, for long-polling feed handlers.
func (db *Database) FeedWatch() (uint64, <-chan struct{}, error) {
	if db.walLog == nil {
		return 0, nil, ErrNotPrimary
	}
	seq, ch := db.walLog.Watch()
	return seq, ch, nil
}

// FeedSeq is the last committed log sequence number on the primary.
func (db *Database) FeedSeq() (uint64, error) {
	if db.walLog == nil {
		return 0, ErrNotPrimary
	}
	return db.walLog.Seq(), nil
}

// NewestCheckpointFile returns the path and covered sequence of the
// newest checkpoint file in the data directory, for streaming to a
// bootstrapping follower. ok is false when no checkpoint has been written
// yet (the follower then tails the log from sequence 0 instead).
func (db *Database) NewestCheckpointFile() (path string, seq uint64, ok bool, err error) {
	if db.walLog == nil {
		return "", 0, false, ErrNotPrimary
	}
	db.ckptMu.Lock() // a checkpoint rename/prune mid-scan would race the pick
	defer db.ckptMu.Unlock()
	path, seq, err = wal.NewestCheckpointPath(db.dataDir)
	if err != nil {
		return "", 0, false, err
	}
	return path, seq, path != "", nil
}
