package sgmldb

import (
	"context"
	"errors"
	"os"
	"testing"
	"time"

	"sgmldb/internal/calculus"
)

// TestClampBudget pins the per-axis merge rule: an unrequested axis keeps
// the database limit, a requested axis on an unlimited database applies
// as is, and where both are set the tighter limit wins — a per-call
// option can never exceed what the database grants.
func TestClampBudget(t *testing.T) {
	cases := []struct {
		name      string
		base, req calculus.Budget
		want      calculus.Budget
	}{
		{"both zero", calculus.Budget{}, calculus.Budget{}, calculus.Budget{}},
		{"req on unlimited base",
			calculus.Budget{},
			calculus.Budget{MaxRows: 5, MaxMem: 10, MaxDuration: time.Second},
			calculus.Budget{MaxRows: 5, MaxMem: 10, MaxDuration: time.Second}},
		{"unrequested keeps base",
			calculus.Budget{MaxRows: 100, MaxMem: 200, MaxDuration: time.Minute},
			calculus.Budget{},
			calculus.Budget{MaxRows: 100, MaxMem: 200, MaxDuration: time.Minute}},
		{"tighter request wins",
			calculus.Budget{MaxRows: 100, MaxMem: 200, MaxDuration: time.Minute},
			calculus.Budget{MaxRows: 5, MaxMem: 500, MaxDuration: time.Hour},
			calculus.Budget{MaxRows: 5, MaxMem: 200, MaxDuration: time.Minute}},
	}
	for _, tc := range cases {
		if got := clampBudget(tc.base, tc.req); got != tc.want {
			t.Errorf("%s: clampBudget(%+v, %+v) = %+v, want %+v", tc.name, tc.base, tc.req, got, tc.want)
		}
	}
}

// openWideDB opens a database whose Articles root holds enough documents
// that a scan crosses the meter's 64-row poll stride — budget enforcement
// is strided, so a budget of 1 only observably trips on a scan this wide.
func openWideDB(t *testing.T, opts ...Option) *Database {
	t.Helper()
	db, err := OpenDTD(articleDTDSrc(t), opts...)
	if err != nil {
		t.Fatal(err)
	}
	src := articleSrcT(t)
	srcs := make([]string, 200)
	for i := range srcs {
		srcs[i] = src
	}
	if _, err := db.LoadDocuments(srcs); err != nil {
		t.Fatal(err)
	}
	return db
}

const wideQuery = `select a from a in Articles`

// TestQueryOptionsEnforced exercises the per-call budget end to end: a
// query that runs fine un-optioned is killed by a per-call row budget and
// by a per-call memory budget, on both the ad-hoc and the prepared paths,
// while the un-optioned paths stay unlimited.
func TestQueryOptionsEnforced(t *testing.T) {
	db := openWideDB(t)

	if _, err := db.QueryContext(context.Background(), wideQuery); err != nil {
		t.Fatalf("un-optioned query: %v", err)
	}
	if _, err := db.QueryContext(context.Background(), wideQuery, QMaxRows(1)); !errors.Is(err, ErrBudgetExceeded) {
		t.Errorf("QMaxRows(1): err = %v, want ErrBudgetExceeded", err)
	}
	if _, err := db.QueryRows(wideQuery, QMaxRows(1)); !errors.Is(err, ErrBudgetExceeded) {
		t.Errorf("QueryRows QMaxRows(1): err = %v, want ErrBudgetExceeded", err)
	}
	if _, err := db.QueryRowsContext(context.Background(), wideQuery, QMaxMemory(1)); !errors.Is(err, ErrBudgetExceeded) {
		t.Errorf("QMaxMemory(1): err = %v, want ErrBudgetExceeded", err)
	}

	pq, err := db.Prepare(wideQuery)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pq.Run(context.Background()); err != nil {
		t.Fatalf("un-optioned prepared run: %v", err)
	}
	if _, err := pq.Run(context.Background(), QMaxRows(1)); !errors.Is(err, ErrBudgetExceeded) {
		t.Errorf("prepared Run QMaxRows(1): err = %v, want ErrBudgetExceeded", err)
	}
	if _, err := pq.Rows(context.Background(), QMaxRows(1)); !errors.Is(err, ErrBudgetExceeded) {
		t.Errorf("prepared Rows QMaxRows(1): err = %v, want ErrBudgetExceeded", err)
	}
	// The per-call budget is per execution, not sticky: the statement
	// still runs unlimited afterwards.
	if _, err := pq.Run(context.Background()); err != nil {
		t.Errorf("prepared run after budgeted run: %v", err)
	}
}

// TestQueryOptionsCannotExceedDatabase pins the override-downward-only
// contract: with a database-level row budget of 1, a per-call request for
// a million rows still trips at 1.
func TestQueryOptionsCannotExceedDatabase(t *testing.T) {
	db := openWideDB(t, WithMaxRows(1))
	if _, err := db.QueryContext(context.Background(), wideQuery, QMaxRows(1_000_000)); !errors.Is(err, ErrBudgetExceeded) {
		t.Errorf("QMaxRows above database limit: err = %v, want ErrBudgetExceeded", err)
	}
}

// TestStatsCounters drives one success and one budget kill through the
// facade and asserts the Stats counters observe them.
func TestStatsCounters(t *testing.T) {
	db := openWideDB(t)

	if _, err := db.Query(wideQuery); err != nil {
		t.Fatal(err)
	}
	if _, err := db.QueryContext(context.Background(), wideQuery, QMaxRows(1)); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("budgeted query: %v", err)
	}
	st := db.Stats()
	if st.QueriesServed != 2 {
		t.Errorf("QueriesServed = %d, want 2", st.QueriesServed)
	}
	if st.BudgetExceeded != 1 {
		t.Errorf("BudgetExceeded = %d, want 1", st.BudgetExceeded)
	}
	if st.Epoch != db.Epoch() {
		t.Errorf("Epoch = %d, want %d", st.Epoch, db.Epoch())
	}
	if st.Durable {
		t.Error("Durable = true on an in-memory database")
	}
	if st.Objects == 0 {
		t.Error("embedded instance stats missing")
	}
}

// articleDTDSrc and articleSrcT load the article corpus sources for
// tests in this file (chaos_test.go owns articleSrc).
func articleDTDSrc(t *testing.T) string {
	t.Helper()
	src, err := os.ReadFile("testdata/article.dtd")
	if err != nil {
		t.Fatal(err)
	}
	return string(src)
}

func articleSrcT(t *testing.T) string {
	t.Helper()
	src, err := os.ReadFile("testdata/article.sgml")
	if err != nil {
		t.Fatal(err)
	}
	return string(src)
}
