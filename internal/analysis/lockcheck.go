package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// The lockcheck analyzer guards the PR-1 concurrency discipline: the
// facade and the engine keep their invariants with by-hand RWMutex use,
// whose two failure modes are (a) a path that returns while the lock is
// held and (b) a method that — holding the lock — calls another method of
// the same receiver that acquires it again (self-deadlock; Go mutexes are
// not reentrant).
//
// The analysis is a linear walk of each method body in source order,
// tracking which of the receiver's sync.Mutex/sync.RWMutex fields are
// held. `defer mu.Unlock()` discharges the obligation for the rest of
// the method (the preferred shape). Statements inside `go` function
// literals run on another goroutine and are skipped. The walk is an
// approximation — it does not model path-sensitive branch interleavings —
// so intentional exceptions carry a //lint:allow lockcheck annotation.

// LockcheckAnalyzer checks receiver-mutex discipline.
var LockcheckAnalyzer = &Analyzer{
	Name:       "lockcheck",
	Doc:        "receiver mutexes must be released on all paths and never re-acquired",
	RunPackage: runLockcheck,
}

// lockOp classifies one mutex method call.
type lockOp int

const (
	opNone lockOp = iota
	opLock        // Lock, RLock
	opUnlock
)

func classifyLockOp(name string) lockOp {
	switch name {
	case "Lock", "RLock":
		return opLock
	case "Unlock", "RUnlock":
		return opUnlock
	}
	return opNone
}

// mutexRef is a resolved `recv.field.Op()` call.
type mutexRef struct {
	field string
	mode  string // the mutex method name: Lock, RLock, …
	op    lockOp
}

func runLockcheck(prog *Program, pkg *Package, report func(Diagnostic)) {
	// First pass: which methods acquire which receiver mutex fields.
	acquires := map[*types.Func]map[string]bool{}
	funcBodies(pkg, func(decl *ast.FuncDecl, fn *types.Func) {
		recv := receiverVar(pkg, decl)
		if recv == nil || fn == nil {
			return
		}
		fields := map[string]bool{}
		inspectSkippingFuncLits(decl.Body, func(n ast.Node) {
			if call, ok := n.(*ast.CallExpr); ok {
				if ref, ok := resolveMutexCall(pkg, recv, call); ok && ref.op == opLock {
					fields[ref.field] = true
				}
			}
		})
		if len(fields) > 0 {
			acquires[fn] = fields
		}
	})
	// Second pass: the linear held-lock walk.
	funcBodies(pkg, func(decl *ast.FuncDecl, fn *types.Func) {
		recv := receiverVar(pkg, decl)
		if recv == nil {
			return
		}
		w := &lockWalker{
			pkg:      pkg,
			recv:     recv,
			acquires: acquires,
			held:     map[string]token.Pos{},
			deferred: map[string]bool{},
			report:   report,
		}
		w.stmts(decl.Body.List)
		for field, pos := range w.held {
			if !w.deferred[field] {
				report(Diagnostic{Pos: pos, Message: fmt.Sprintf(
					"%s is locked but not released on every path (prefer `defer %s.Unlock()`)",
					field, field)})
			}
		}
	})
}

// receiverVar resolves the receiver identifier's object, or nil for
// functions and anonymous receivers.
func receiverVar(pkg *Package, decl *ast.FuncDecl) *types.Var {
	if decl.Recv == nil || len(decl.Recv.List) == 0 || len(decl.Recv.List[0].Names) == 0 {
		return nil
	}
	v, _ := pkg.Info.Defs[decl.Recv.List[0].Names[0]].(*types.Var)
	return v
}

// resolveMutexCall matches `recv.field.M()` where field is a
// sync.Mutex/sync.RWMutex field of the receiver.
func resolveMutexCall(pkg *Package, recv *types.Var, call *ast.CallExpr) (mutexRef, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return mutexRef{}, false
	}
	op := classifyLockOp(sel.Sel.Name)
	if op == opNone {
		return mutexRef{}, false
	}
	inner, ok := sel.X.(*ast.SelectorExpr)
	if !ok {
		return mutexRef{}, false
	}
	base, ok := inner.X.(*ast.Ident)
	if !ok || pkg.Info.Uses[base] != recv {
		return mutexRef{}, false
	}
	fieldObj, ok := pkg.Info.Uses[inner.Sel].(*types.Var)
	if !ok || !isMutexType(fieldObj.Type()) {
		return mutexRef{}, false
	}
	return mutexRef{field: inner.Sel.Name, mode: sel.Sel.Name, op: op}, true
}

// isMutexType matches sync.Mutex and sync.RWMutex (and pointers to them).
func isMutexType(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "sync" &&
		(named.Obj().Name() == "Mutex" || named.Obj().Name() == "RWMutex")
}

// lockWalker carries the linear walk state of one method body.
type lockWalker struct {
	pkg      *Package
	recv     *types.Var
	acquires map[*types.Func]map[string]bool
	held     map[string]token.Pos // field -> position of the acquiring call
	deferred map[string]bool      // field -> discharged by defer Unlock
	report   func(Diagnostic)
}

func (w *lockWalker) stmts(list []ast.Stmt) {
	for _, s := range list {
		w.stmt(s)
	}
}

func (w *lockWalker) stmt(s ast.Stmt) {
	switch x := s.(type) {
	case *ast.BlockStmt:
		w.stmts(x.List)
	case *ast.IfStmt:
		if x.Init != nil {
			w.stmt(x.Init)
		}
		w.calls(x.Cond)
		w.stmt(x.Body)
		if x.Else != nil {
			w.stmt(x.Else)
		}
	case *ast.ForStmt:
		if x.Init != nil {
			w.stmt(x.Init)
		}
		if x.Cond != nil {
			w.calls(x.Cond)
		}
		w.stmt(x.Body)
		if x.Post != nil {
			w.stmt(x.Post)
		}
	case *ast.RangeStmt:
		w.calls(x.X)
		w.stmt(x.Body)
	case *ast.SwitchStmt:
		if x.Init != nil {
			w.stmt(x.Init)
		}
		if x.Tag != nil {
			w.calls(x.Tag)
		}
		for _, c := range x.Body.List {
			w.stmts(c.(*ast.CaseClause).Body)
		}
	case *ast.TypeSwitchStmt:
		if x.Init != nil {
			w.stmt(x.Init)
		}
		for _, c := range x.Body.List {
			w.stmts(c.(*ast.CaseClause).Body)
		}
	case *ast.SelectStmt:
		for _, c := range x.Body.List {
			comm := c.(*ast.CommClause)
			if comm.Comm != nil {
				w.stmt(comm.Comm)
			}
			w.stmts(comm.Body)
		}
	case *ast.LabeledStmt:
		w.stmt(x.Stmt)
	case *ast.DeferStmt:
		w.deferStmt(x)
	case *ast.GoStmt:
		// Another goroutine: its lock operations are outside this
		// method's linear discipline.
	case *ast.ReturnStmt:
		for _, r := range x.Results {
			w.calls(r)
		}
		for field := range w.held {
			if !w.deferred[field] {
				w.report(Diagnostic{Pos: x.Return, Message: fmt.Sprintf(
					"returns while %s is held (missing %s.Unlock, or use defer)", field, field)})
			}
		}
	default:
		w.calls(s)
	}
}

// deferStmt handles `defer mu.Unlock()` (directly or wrapped in an
// immediate function literal), which discharges the release obligation
// for the rest of the method.
func (w *lockWalker) deferStmt(d *ast.DeferStmt) {
	discharge := func(call *ast.CallExpr) {
		if ref, ok := resolveMutexCall(w.pkg, w.recv, call); ok && ref.op == opUnlock {
			// The field stays in held: the lock is released only at return,
			// so a later call into a lock-acquiring method of the same
			// receiver is still a self-deadlock.
			w.deferred[ref.field] = true
		}
	}
	discharge(d.Call)
	if lit, ok := d.Call.Fun.(*ast.FuncLit); ok {
		inspectSkippingFuncLits(lit.Body, func(n ast.Node) {
			if call, ok := n.(*ast.CallExpr); ok {
				discharge(call)
			}
		})
	}
}

// calls processes every direct call inside an expression or simple
// statement, in source order.
func (w *lockWalker) calls(n ast.Node) {
	if n == nil {
		return
	}
	inspectSkippingFuncLits(n, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		if ref, ok := resolveMutexCall(w.pkg, w.recv, call); ok {
			switch ref.op {
			case opLock:
				if _, already := w.held[ref.field]; already || w.deferred[ref.field] {
					w.report(Diagnostic{Pos: call.Pos(), Message: fmt.Sprintf(
						"%s.%s while %s is already held: Go mutexes are not reentrant", ref.field, ref.mode, ref.field)})
				}
				w.held[ref.field] = call.Pos()
			case opUnlock:
				delete(w.held, ref.field)
			}
			return
		}
		// A method call on the same receiver while a lock is held: if the
		// callee acquires that lock, this is a guaranteed self-deadlock.
		if len(w.held) == 0 {
			return
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return
		}
		base, ok := sel.X.(*ast.Ident)
		if !ok || w.pkg.Info.Uses[base] != w.recv {
			return
		}
		callee, _ := w.pkg.Info.Uses[sel.Sel].(*types.Func)
		if callee == nil {
			return
		}
		for field := range w.acquires[callee] {
			if _, heldHere := w.held[field]; heldHere {
				w.report(Diagnostic{Pos: call.Pos(), Message: fmt.Sprintf(
					"calls %s.%s while holding %s, and %s acquires %s: self-deadlock",
					base.Name, sel.Sel.Name, field, sel.Sel.Name, field)})
			}
		}
	})
}

// inspectSkippingFuncLits visits n's subtree without descending into
// function literals.
func inspectSkippingFuncLits(n ast.Node, visit func(ast.Node)) {
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}
