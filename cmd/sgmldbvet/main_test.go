package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The exit-code contract is the CI interface: 0 clean, 1 findings (or
// stale baseline), 2 driver error. Each test drives run() against a
// throwaway module so the paths stay pinned.

const goMod = "module tmp\n\ngo 1.22\n"

const cleanSrc = `package main

func main() {}
`

// findingSrc trips errwrap: an error operand formatted with %v.
const findingSrc = `package main

import (
	"fmt"
	"io"
)

func main() {
	fmt.Println(fmt.Errorf("wrap: %v", io.EOF))
}
`

// fixedSrc is findingSrc with the finding fixed.
const fixedSrc = `package main

import (
	"fmt"
	"io"
)

func main() {
	fmt.Println(fmt.Errorf("wrap: %w", io.EOF))
}
`

const brokenSrc = `package main

func main() { undefinedFunction() }
`

const suppressedSrc = `package main

import (
	"fmt"
	"io"
)

func main() {
	//lint:allow errwrap demonstrating suppression in a fixture module
	fmt.Println(fmt.Errorf("wrap: %v", io.EOF))
}
`

func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, content := range files {
		p := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func runVet(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errOut bytes.Buffer
	code = run(args, &out, &errOut)
	return code, out.String(), errOut.String()
}

func TestExitClean(t *testing.T) {
	dir := writeModule(t, map[string]string{"go.mod": goMod, "main.go": cleanSrc})
	code, _, stderr := runVet(t, "-dir", dir, "./...")
	if code != 0 {
		t.Fatalf("clean module: exit %d, stderr:\n%s", code, stderr)
	}
}

func TestExitFindings(t *testing.T) {
	dir := writeModule(t, map[string]string{"go.mod": goMod, "main.go": findingSrc})
	code, stdout, _ := runVet(t, "-dir", dir, "./...")
	if code != 1 {
		t.Fatalf("module with finding: exit %d, want 1", code)
	}
	if !strings.Contains(stdout, "errwrap") || !strings.Contains(stdout, "%w") {
		t.Errorf("finding not reported on stdout:\n%s", stdout)
	}
}

func TestExitDriverError(t *testing.T) {
	dir := writeModule(t, map[string]string{"go.mod": goMod, "main.go": brokenSrc})
	code, _, stderr := runVet(t, "-dir", dir, "./...")
	if code != 2 {
		t.Fatalf("untypecheckable module: exit %d, want 2 (stderr:\n%s)", code, stderr)
	}
	if stderr == "" {
		t.Error("driver error produced no stderr")
	}
}

func TestExitNoPackages(t *testing.T) {
	dir := writeModule(t, map[string]string{"go.mod": goMod, "main.go": cleanSrc})
	code, _, _ := runVet(t, "-dir", dir, "./nonexistent/...")
	if code != 2 {
		t.Fatalf("empty pattern: exit %d, want 2", code)
	}
}

func TestExitUnknownAnalyzer(t *testing.T) {
	code, _, _ := runVet(t, "-analyzers", "nope", "./...")
	if code != 2 {
		t.Fatalf("unknown analyzer: exit %d, want 2", code)
	}
}

func TestJSONReport(t *testing.T) {
	dir := writeModule(t, map[string]string{"go.mod": goMod, "main.go": findingSrc})
	code, stdout, _ := runVet(t, "-dir", dir, "-json", "./...")
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	var rep report
	if err := json.Unmarshal([]byte(stdout), &rep); err != nil {
		t.Fatalf("stdout is not a JSON report: %v\n%s", err, stdout)
	}
	if rep.Version != 1 || len(rep.Findings) != 1 {
		t.Fatalf("report = version %d, %d findings; want version 1, 1 finding", rep.Version, len(rep.Findings))
	}
	f := rep.Findings[0]
	if f.Analyzer != "errwrap" || f.File != "main.go" || f.Line == 0 || f.Suppressed || f.Baselined {
		t.Errorf("finding = %+v", f)
	}
}

func TestJSONSuppressed(t *testing.T) {
	dir := writeModule(t, map[string]string{"go.mod": goMod, "main.go": suppressedSrc})
	code, stdout, stderr := runVet(t, "-dir", dir, "-json", "./...")
	if code != 0 {
		t.Fatalf("suppressed finding: exit %d, want 0 (stderr:\n%s)", code, stderr)
	}
	var rep report
	if err := json.Unmarshal([]byte(stdout), &rep); err != nil {
		t.Fatalf("stdout is not a JSON report: %v", err)
	}
	if len(rep.Findings) != 1 || !rep.Findings[0].Suppressed {
		t.Fatalf("suppressed finding missing from the JSON artifact: %+v", rep.Findings)
	}
}

// TestBaselineFlow drives the whole grandfather lifecycle: record a
// dirty state, gate on it, fix the finding (stale entry fails), then
// regenerate — a shrink is loud (exit 1) but written, so the next run
// is clean.
func TestBaselineFlow(t *testing.T) {
	dir := writeModule(t, map[string]string{"go.mod": goMod, "main.go": findingSrc})
	bl := filepath.Join(dir, "baseline.json")

	code, _, stderr := runVet(t, "-dir", dir, "-baseline", bl, "-write-baseline", "./...")
	if code != 0 {
		t.Fatalf("initial -write-baseline: exit %d (stderr:\n%s)", code, stderr)
	}
	code, _, stderr = runVet(t, "-dir", dir, "-baseline", bl, "./...")
	if code != 0 {
		t.Fatalf("baselined finding still fails: exit %d (stderr:\n%s)", code, stderr)
	}

	if err := os.WriteFile(filepath.Join(dir, "main.go"), []byte(fixedSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, stderr = runVet(t, "-dir", dir, "-baseline", bl, "./...")
	if code != 1 || !strings.Contains(stderr, "stale baseline entry") {
		t.Fatalf("stale baseline: exit %d, stderr:\n%s", code, stderr)
	}

	code, _, stderr = runVet(t, "-dir", dir, "-baseline", bl, "-write-baseline", "./...")
	if code != 1 || !strings.Contains(stderr, "shrank") {
		t.Fatalf("shrinking regenerate: exit %d, stderr:\n%s", code, stderr)
	}
	code, _, stderr = runVet(t, "-dir", dir, "-baseline", bl, "./...")
	if code != 0 {
		t.Fatalf("after deliberate regenerate: exit %d (stderr:\n%s)", code, stderr)
	}
}

func TestWriteBaselineRequiresPath(t *testing.T) {
	code, _, _ := runVet(t, "-write-baseline", "./...")
	if code != 2 {
		t.Fatalf("-write-baseline without -baseline: exit %d, want 2", code)
	}
}
