package sgmldb

import "time"

// Option configures a Database at open time:
//
//	db, err := sgmldb.OpenDTD(src, sgmldb.WithAlgebra(true), sgmldb.WithWorkers(8))
//
// Options apply before the database is returned, so the engine
// configuration is fixed while queries run — the concurrency contract of
// the engine requires exactly that.
type Option func(*Database)

// WithAlgebra selects the evaluation strategy: true evaluates through the
// Section 5.4 algebra plans (with plan caching), false through the naive
// calculus interpreter. The default is the naive interpreter.
func WithAlgebra(on bool) Option {
	return func(db *Database) { db.Engine.UseAlgebra = on }
}

// WithMaxBranches bounds the (★) expansion of path-variable patterns into
// a union of variable-free plans (0 keeps the engine default).
func WithMaxBranches(n int) Option {
	return func(db *Database) { db.Engine.MaxBranches = n }
}

// WithSkipTypecheck disables the static Section 4.2 checks, leaving only
// execution-time type errors.
func WithSkipTypecheck(on bool) Option {
	return func(db *Database) { db.Engine.SkipTypecheck = on }
}

// WithWorkers bounds intra-query parallelism of algebra plan scans:
// 0 (the default) uses GOMAXPROCS, 1 evaluates serially, n > 1 uses up to
// n goroutines per query. Results are identical at any setting.
func WithWorkers(n int) Option {
	return func(db *Database) { db.Engine.Workers = n }
}

// WithMaxConcurrentQueries admits at most n queries at a time (across
// Query, QueryContext, QueryRows and prepared Run/Rows); excess callers
// queue until a slot frees, their context is done, or WithQueueTimeout
// elapses — the latter two shed the query with ctx.Err() or
// ErrOverloaded respectively. n <= 0 (the default) admits everything.
func WithMaxConcurrentQueries(n int) Option {
	return func(db *Database) {
		if n > 0 {
			db.gate = make(chan struct{}, n)
		}
	}
}

// WithQueueTimeout bounds how long an excess query (see
// WithMaxConcurrentQueries) waits for an admission slot before being
// shed with ErrOverloaded. Zero (the default) queues until a slot frees
// or the query's context is done.
func WithQueueTimeout(d time.Duration) Option {
	return func(db *Database) { db.queueTimeout = d }
}

// WithMaxRows bounds the rows a single query may scan or materialise
// (measured at the evaluator's strided polls and at expansion points). A
// query over budget fails with ErrBudgetExceeded; others are unaffected.
// Zero (the default) is unlimited.
func WithMaxRows(n int64) Option {
	return func(db *Database) { db.Engine.Budget.MaxRows = n }
}

// WithMaxMemory bounds the estimated bytes a single query may
// materialise (valuations are costed by arity, not measured
// allocations). A query over budget fails with ErrBudgetExceeded. Zero
// (the default) is unlimited.
func WithMaxMemory(bytes int64) Option {
	return func(db *Database) { db.Engine.Budget.MaxMem = bytes }
}

// WithDataDir makes the database durable in dir (created if missing):
// every committed load batch and root naming is appended to a write-ahead
// log and fsynced before it is published, and OpenDTD recovers the last
// durable state from the directory on startup (newest checkpoint + log
// tail replay). Without this option the database is purely in-memory, as
// before — the query path is identical either way. Only OpenDTD supports
// it: recovery replays document loads, which needs the DTD.
func WithDataDir(dir string) Option {
	return func(db *Database) { db.dataDir = dir }
}

// WithCheckpointEvery sets how many committed records accumulate before
// the background checkpointer snapshots the database and truncates the
// covered log prefix. 0 (the default) checkpoints every 8 records; a
// negative n disables automatic checkpoints (Checkpoint still works).
// Only meaningful together with WithDataDir.
func WithCheckpointEvery(n int) Option {
	return func(db *Database) { db.checkpointEvery = n }
}

// WithQueryTimeout bounds each query's wall-clock evaluation time,
// enforced at the same strided polls as cancellation; an expired query
// fails with ErrBudgetExceeded. Unlike a context deadline it needs no
// caller cooperation, so it also covers Query and QueryRows. Zero (the
// default) is unlimited.
func WithQueryTimeout(d time.Duration) Option {
	return func(db *Database) { db.Engine.Budget.MaxDuration = d }
}
