package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// The exhaustive analyzer: the paper's value and formula sorts are closed
// algebraic kind sets, dispatched all over the engine via switch
// statements. A type declaration marked
//
//	//sgmldbvet:closed
//
// declares the set closed: for an interface, the variants are every
// concrete named type of the defining package implementing it; for a
// defined constant kind (e.g. an int enum), the variants are the
// package-level constants of that exact type. Any switch over a closed
// set must then cover every variant explicitly — a case naming the
// variant, its pointer form, or an interface it satisfies — unless the
// switch has a default clause that does not panic (a benign default is an
// explicit "everything else" handler; a panicking default is exactly the
// latent-crash pattern this analyzer exists to retire).

// ExhaustiveAnalyzer checks kind switches over closed sets.
var ExhaustiveAnalyzer = &Analyzer{
	Name:       "exhaustive",
	Doc:        "switches over //sgmldbvet:closed kind sets must handle every variant",
	RunPackage: runExhaustive,
}

// closedDirective is the marker in a type's doc comment.
const closedDirective = "sgmldbvet:closed"

// ifaceSet is a closed interface kind set.
type ifaceSet struct {
	named    *types.Named
	variants []ifaceVariant
}

// ifaceVariant is one concrete implementation of a closed interface.
type ifaceVariant struct {
	name string     // display name, e.g. "*Tuple"
	typ  types.Type // the implementing type (pointer form when needed)
}

// constSet is a closed constant kind set (an enum).
type constSet struct {
	named    *types.Named
	variants []constVariant
}

// constVariant is one enum constant; variants with equal values (aliases)
// collapse onto the first declared name.
type constVariant struct {
	name string
	val  constant.Value
}

// closedSets is the program-wide registry of closed kind sets.
type closedSets struct {
	ifaces map[*types.TypeName]*ifaceSet
	consts map[*types.TypeName]*constSet
}

// closedSets computes the registry once per program: every non-standard
// package is scanned for marked type declarations, so directives in a
// dependency (e.g. the object package) govern switches in its dependents.
func (prog *Program) closedSets() *closedSets {
	prog.closedOnce.Do(func() {
		cs := &closedSets{
			ifaces: map[*types.TypeName]*ifaceSet{},
			consts: map[*types.TypeName]*constSet{},
		}
		for _, pkg := range prog.Packages {
			if pkg.Standard {
				continue
			}
			for _, f := range pkg.Files {
				for _, d := range f.Decls {
					gd, ok := d.(*ast.GenDecl)
					if !ok {
						continue
					}
					for _, spec := range gd.Specs {
						ts, ok := spec.(*ast.TypeSpec)
						if !ok || !hasClosedDirective(gd, ts) {
							continue
						}
						obj, ok := pkg.Info.Defs[ts.Name].(*types.TypeName)
						if !ok {
							continue
						}
						registerClosed(cs, pkg, obj)
					}
				}
			}
		}
		prog.closed = cs
	})
	return prog.closed
}

// hasClosedDirective looks for the marker in the doc comments attached to
// the type spec or its enclosing declaration group.
func hasClosedDirective(gd *ast.GenDecl, ts *ast.TypeSpec) bool {
	for _, cg := range []*ast.CommentGroup{ts.Doc, ts.Comment, gd.Doc} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if strings.Contains(c.Text, closedDirective) {
				return true
			}
		}
	}
	return false
}

// registerClosed computes the variant set of one marked type.
func registerClosed(cs *closedSets, pkg *Package, obj *types.TypeName) {
	named, ok := obj.Type().(*types.Named)
	if !ok {
		return
	}
	if iface, ok := named.Underlying().(*types.Interface); ok {
		set := &ifaceSet{named: named}
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn == obj || tn.IsAlias() {
				continue
			}
			t := tn.Type()
			if types.IsInterface(t) {
				continue
			}
			switch {
			case types.Implements(t, iface):
				set.variants = append(set.variants, ifaceVariant{name: name, typ: t})
			case types.Implements(types.NewPointer(t), iface):
				set.variants = append(set.variants, ifaceVariant{name: "*" + name, typ: types.NewPointer(t)})
			}
		}
		if len(set.variants) > 0 {
			cs.ifaces[obj] = set
		}
		return
	}
	// A constant kind set: collect the defining package's constants of
	// this exact type, collapsing value aliases onto their first name.
	set := &constSet{named: named}
	scope := pkg.Types.Scope()
	seen := map[string]bool{}
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, n := range vs.Names {
					c, ok := scope.Lookup(n.Name).(*types.Const)
					if !ok || !types.Identical(c.Type(), named) {
						continue
					}
					key := c.Val().ExactString()
					if seen[key] {
						continue
					}
					seen[key] = true
					set.variants = append(set.variants, constVariant{name: n.Name, val: c.Val()})
				}
			}
		}
	}
	if len(set.variants) > 0 {
		cs.consts[obj] = set
	}
}

func runExhaustive(prog *Program, pkg *Package, report func(Diagnostic)) {
	cs := prog.closedSets()
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch sw := n.(type) {
			case *ast.TypeSwitchStmt:
				checkTypeSwitch(pkg, cs, sw, report)
			case *ast.SwitchStmt:
				checkConstSwitch(pkg, cs, sw, report)
			}
			return true
		})
	}
}

// typeNameOf resolves a type to its marked *types.TypeName, if any.
func typeNameOf(t types.Type) *types.TypeName {
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	return named.Obj()
}

// checkTypeSwitch enforces exhaustiveness of `switch x := v.(type)` when
// the static type of v is a closed interface.
func checkTypeSwitch(pkg *Package, cs *closedSets, sw *ast.TypeSwitchStmt, report func(Diagnostic)) {
	var tagExpr ast.Expr
	switch s := sw.Assign.(type) {
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			if ta, ok := s.Rhs[0].(*ast.TypeAssertExpr); ok {
				tagExpr = ta.X
			}
		}
	case *ast.ExprStmt:
		if ta, ok := s.X.(*ast.TypeAssertExpr); ok {
			tagExpr = ta.X
		}
	}
	if tagExpr == nil {
		return
	}
	tn := typeNameOf(pkg.Info.TypeOf(tagExpr))
	if tn == nil {
		return
	}
	set, ok := cs.ifaces[tn]
	if !ok {
		return
	}
	covered := make([]bool, len(set.variants))
	hasBenignDefault := false
	for _, stmt := range sw.Body.List {
		clause := stmt.(*ast.CaseClause)
		if clause.List == nil { // default:
			if !clausePanics(pkg, clause) {
				hasBenignDefault = true
			}
			continue
		}
		for _, expr := range clause.List {
			tv, ok := pkg.Info.Types[expr]
			if !ok || tv.IsNil() {
				continue
			}
			caseType := tv.Type
			for i, v := range set.variants {
				if covered[i] {
					continue
				}
				if types.Identical(v.typ, caseType) {
					covered[i] = true
					continue
				}
				// A case over a broader interface (e.g. case DataTerm in a
				// Term switch) covers every variant satisfying it.
				if ci, ok := caseType.Underlying().(*types.Interface); ok && types.Implements(v.typ, ci) {
					covered[i] = true
				}
			}
		}
	}
	if hasBenignDefault {
		return
	}
	var missing []string
	for i, v := range set.variants {
		if !covered[i] {
			missing = append(missing, v.name)
		}
	}
	if len(missing) > 0 {
		report(Diagnostic{
			Pos: sw.Switch,
			Message: fmt.Sprintf("non-exhaustive type switch over closed set %s: missing %s",
				qualified(set.named), strings.Join(missing, ", ")),
		})
	}
}

// checkConstSwitch enforces exhaustiveness of a value switch whose tag is
// a closed constant kind.
func checkConstSwitch(pkg *Package, cs *closedSets, sw *ast.SwitchStmt, report func(Diagnostic)) {
	if sw.Tag == nil {
		return
	}
	tn := typeNameOf(pkg.Info.TypeOf(sw.Tag))
	if tn == nil {
		return
	}
	set, ok := cs.consts[tn]
	if !ok {
		return
	}
	covered := make([]bool, len(set.variants))
	hasBenignDefault := false
	for _, stmt := range sw.Body.List {
		clause := stmt.(*ast.CaseClause)
		if clause.List == nil {
			if !clausePanics(pkg, clause) {
				hasBenignDefault = true
			}
			continue
		}
		for _, expr := range clause.List {
			tv, ok := pkg.Info.Types[expr]
			if !ok || tv.Value == nil {
				continue
			}
			for i, v := range set.variants {
				if !covered[i] && constant.Compare(v.val, token.EQL, tv.Value) {
					covered[i] = true
				}
			}
		}
	}
	if hasBenignDefault {
		return
	}
	var missing []string
	for i, v := range set.variants {
		if !covered[i] {
			missing = append(missing, v.name)
		}
	}
	if len(missing) > 0 {
		report(Diagnostic{
			Pos: sw.Switch,
			Message: fmt.Sprintf("non-exhaustive switch over closed kind %s: missing %s",
				qualified(set.named), strings.Join(missing, ", ")),
		})
	}
}

// clausePanics reports whether a case clause's body calls the builtin
// panic directly (function literals excluded: a panic inside a deferred
// closure is not the clause's behaviour).
func clausePanics(pkg *Package, clause *ast.CaseClause) bool {
	panics := false
	for _, s := range clause.Body {
		ast.Inspect(s, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			if call, ok := n.(*ast.CallExpr); ok && isPanicCall(pkg.Info, call) {
				panics = true
			}
			return !panics
		})
	}
	return panics
}

// qualified renders pkgpath.TypeName for diagnostics.
func qualified(named *types.Named) string {
	obj := named.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}
