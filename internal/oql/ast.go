package oql

import (
	"fmt"
	"strings"
)

// Expr is a parsed O₂SQL expression.
//
//sgmldbvet:closed
type Expr interface {
	isExpr()
	String() string
}

// Ident is a variable or persistence-root reference.
type Ident struct{ Name string }

func (Ident) isExpr()          {}
func (e Ident) String() string { return e.Name }

// IntLit, FloatLit, StringLit, BoolLit and NilLit are literals.
type IntLit struct{ V int64 }

func (IntLit) isExpr()          {}
func (e IntLit) String() string { return fmt.Sprintf("%d", e.V) }

// FloatLit is a float literal.
type FloatLit struct{ V float64 }

func (FloatLit) isExpr()          {}
func (e FloatLit) String() string { return fmt.Sprintf("%g", e.V) }

// StringLit is a string literal.
type StringLit struct{ V string }

func (StringLit) isExpr()          {}
func (e StringLit) String() string { return fmt.Sprintf("%q", e.V) }

// BoolLit is true or false.
type BoolLit struct{ V bool }

func (BoolLit) isExpr() {}
func (e BoolLit) String() string {
	if e.V {
		return "true"
	}
	return "false"
}

// NilLit is nil.
type NilLit struct{}

func (NilLit) isExpr()        {}
func (NilLit) String() string { return "nil" }

// PatElem is one element of a path suffix attached to an expression:
// ".attr", ".ATT_a", "[i]", "->", "PATH_p", "..", or a binding "(x)"
// directly after a path element.
type PatElem interface {
	isPatElem()
	String() string
}

// AttrP is ".name".
type AttrP struct{ Name string }

func (AttrP) isPatElem()       {}
func (e AttrP) String() string { return "." + e.Name }

// AttrVarP is ".ATT_a".
type AttrVarP struct{ Name string }

func (AttrVarP) isPatElem()       {}
func (e AttrVarP) String() string { return ".ATT_" + e.Name }

// IdxP is "[expr]".
type IdxP struct{ I Expr }

func (IdxP) isPatElem()       {}
func (e IdxP) String() string { return "[" + e.I.String() + "]" }

// PathVarP is "PATH_p".
type PathVarP struct{ Name string }

func (PathVarP) isPatElem()       {}
func (e PathVarP) String() string { return " PATH_" + e.Name }

// DotDotP is the ".." sugar: an anonymous path variable.
type DotDotP struct{}

func (DotDotP) isPatElem()     {}
func (DotDotP) String() string { return " .. " }

// DerefP is "->".
type DerefP struct{}

func (DerefP) isPatElem()     {}
func (DerefP) String() string { return "->" }

// BindP is "(x)": bind the value reached here to a fresh variable.
type BindP struct{ Var string }

func (BindP) isPatElem()       {}
func (e BindP) String() string { return "(" + e.Var + ")" }

// PathExpr is a base expression followed by a path suffix, e.g.
// a.sections[0], my_article PATH_p.title(t), s.title.
type PathExpr struct {
	Base  Expr
	Elems []PatElem
}

func (PathExpr) isExpr() {}
func (e PathExpr) String() string {
	var b strings.Builder
	b.WriteString(e.Base.String())
	for _, el := range e.Elems {
		b.WriteString(el.String())
	}
	return b.String()
}

// Call is a function application, e.g. first(a.authors), name(ATT_a),
// text(ss), count(s), length(PATH_p).
type Call struct {
	Name string
	Args []Expr
}

func (Call) isExpr() {}
func (e Call) String() string {
	parts := make([]string, len(e.Args))
	for i, a := range e.Args {
		parts[i] = a.String()
	}
	return e.Name + "(" + strings.Join(parts, ", ") + ")"
}

// PathVarRef uses a path variable as an expression (e.g. length(PATH_p)).
type PathVarRef struct{ Name string }

func (PathVarRef) isExpr()          {}
func (e PathVarRef) String() string { return "PATH_" + e.Name }

// AttrVarRef uses an attribute variable as an expression (name(ATT_a)).
type AttrVarRef struct{ Name string }

func (AttrVarRef) isExpr()          {}
func (e AttrVarRef) String() string { return "ATT_" + e.Name }

// BinOp enumerates binary operators.
type BinOp int

// Binary operators.
const (
	OpAnd BinOp = iota
	OpOr
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpIn
	OpUnion
	OpExcept // set difference, also written "-"
	OpIntersect
)

func (op BinOp) String() string {
	switch op {
	case OpAnd:
		return "and"
	case OpOr:
		return "or"
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpIn:
		return "in"
	case OpUnion:
		return "union"
	case OpExcept:
		return "-"
	case OpIntersect:
		return "intersect"
	default:
		return "?"
	}
}

// Binary is a binary operation.
type Binary struct {
	Op   BinOp
	L, R Expr
}

func (Binary) isExpr() {}
func (e Binary) String() string {
	return "(" + e.L.String() + " " + e.Op.String() + " " + e.R.String() + ")"
}

// NotExpr is boolean negation.
type NotExpr struct{ E Expr }

func (NotExpr) isExpr()          {}
func (e NotExpr) String() string { return "not " + e.E.String() }

// ContainsExpr is the contains predicate: subject contains pattern.
type ContainsExpr struct {
	Subject Expr
	Pattern PatternExpr
}

func (ContainsExpr) isExpr() {}
func (e ContainsExpr) String() string {
	return e.Subject.String() + " contains " + e.Pattern.String()
}

// NearExpr is the near predicate: near(subject, "a", "b", k).
type NearCond struct {
	Subject Expr
	A, B    string
	Dist    int64
}

func (NearCond) isExpr() {}
func (e NearCond) String() string {
	return fmt.Sprintf("near(%s, %q, %q, %d)", e.Subject, e.A, e.B, e.Dist)
}

// PatternExpr is a boolean combination of text patterns (the operand of
// contains).
type PatternExpr interface {
	isPattern()
	String() string
}

// PatLit is a pattern literal ("SGML", "(t|T)itle").
type PatLit struct{ Src string }

func (PatLit) isPattern()       {}
func (p PatLit) String() string { return fmt.Sprintf("%q", p.Src) }

// PatAnd, PatOr and PatNot combine patterns.
type PatAnd struct{ L, R PatternExpr }

func (PatAnd) isPattern() {}
func (p PatAnd) String() string {
	return "(" + p.L.String() + " and " + p.R.String() + ")"
}

// PatOr is pattern disjunction.
type PatOr struct{ L, R PatternExpr }

func (PatOr) isPattern() {}
func (p PatOr) String() string {
	return "(" + p.L.String() + " or " + p.R.String() + ")"
}

// PatNot is pattern negation.
type PatNot struct{ E PatternExpr }

func (PatNot) isPattern()       {}
func (p PatNot) String() string { return "not " + p.E.String() }

// TupleCons constructs a tuple: tuple(t: a.title, n: 3).
type TupleField struct {
	Name string
	E    Expr
}

// TupleCons is the tuple constructor.
type TupleCons struct{ Fields []TupleField }

func (TupleCons) isExpr() {}
func (e TupleCons) String() string {
	parts := make([]string, len(e.Fields))
	for i, f := range e.Fields {
		parts[i] = f.Name + ": " + f.E.String()
	}
	return "tuple(" + strings.Join(parts, ", ") + ")"
}

// ListCons and SetCons construct collections.
type ListCons struct{ Items []Expr }

func (ListCons) isExpr() {}
func (e ListCons) String() string {
	parts := make([]string, len(e.Items))
	for i, it := range e.Items {
		parts[i] = it.String()
	}
	return "list(" + strings.Join(parts, ", ") + ")"
}

// SetCons is the set constructor.
type SetCons struct{ Items []Expr }

func (SetCons) isExpr() {}
func (e SetCons) String() string {
	parts := make([]string, len(e.Items))
	for i, it := range e.Items {
		parts[i] = it.String()
	}
	return "set(" + strings.Join(parts, ", ") + ")"
}

// ExistsExpr is "exists x in coll: cond".
type ExistsExpr struct {
	Var  string
	Coll Expr
	Cond Expr
}

func (ExistsExpr) isExpr() {}
func (e ExistsExpr) String() string {
	return "exists " + e.Var + " in " + e.Coll.String() + ": " + e.Cond.String()
}

// ForallExpr is "forall x in coll: cond".
type ForallExpr struct {
	Var  string
	Coll Expr
	Cond Expr
}

func (ForallExpr) isExpr() {}
func (e ForallExpr) String() string {
	return "forall " + e.Var + " in " + e.Coll.String() + ": " + e.Cond.String()
}

// FromBinding is one entry of a from clause.
type FromBinding struct {
	// Var in Coll: "a in Articles".
	Var  string
	Coll Expr
	// Pattern binding: "my_article PATH_p.title(t)" — Base with a path
	// suffix whose variables the binding introduces. Exactly one of
	// (Var, Coll) and (Base) is set.
	Base Expr
	// Position binding: "from(i) in letter" — Attr names the marker whose
	// position i is bound (Section 4.4).
	Attr   string
	PosVar string
}

// String renders the binding.
func (b FromBinding) String() string {
	switch {
	case b.Attr != "":
		return b.Attr + "(" + b.PosVar + ") in " + b.Coll.String()
	case b.Base != nil:
		return b.Base.String()
	default:
		return b.Var + " in " + b.Coll.String()
	}
}

// SelectExpr is select-from-where.
type SelectExpr struct {
	Proj  Expr
	From  []FromBinding
	Where Expr // nil when absent
}

func (SelectExpr) isExpr() {}
func (e SelectExpr) String() string {
	var b strings.Builder
	b.WriteString("select ")
	b.WriteString(e.Proj.String())
	b.WriteString(" from ")
	parts := make([]string, len(e.From))
	for i, f := range e.From {
		parts[i] = f.String()
	}
	b.WriteString(strings.Join(parts, ", "))
	if e.Where != nil {
		b.WriteString(" where ")
		b.WriteString(e.Where.String())
	}
	return b.String()
}
