// Package exhaustive is a sgmldbvet fixture: switches over closed kind
// sets must cover every variant. The want comments state the diagnostics
// the analyzer must produce on that line.
package exhaustive

import "fmt"

// Kind is a closed enum kind.
//
//sgmldbvet:closed
type Kind int

// The three kinds.
const (
	KindA Kind = iota
	KindB
	KindC
	// KindAlias collapses onto KindC: aliases are not separate variants.
	KindAlias = KindC
)

// Node is a closed interface kind set.
//
//sgmldbvet:closed
type Node interface{ isNode() }

// Leaf implements Node by value.
type Leaf struct{}

// Branch implements Node through its pointer.
type Branch struct{ L, R Node }

func (Leaf) isNode()    {}
func (*Branch) isNode() {}

// Open is an unmarked interface: switches over it are never checked.
type Open interface{ isOpen() }

type onlyImpl struct{}

func (onlyImpl) isOpen() {}

func completeConst(k Kind) string {
	switch k {
	case KindA:
		return "a"
	case KindB:
		return "b"
	case KindC:
		return "c"
	default:
		panic("unreachable")
	}
}

func missingConst(k Kind) string {
	switch k { // want "non-exhaustive switch over closed kind" "missing KindC"
	case KindA:
		return "a"
	case KindB:
		return "b"
	default:
		panic(fmt.Sprintf("unknown kind %d", k))
	}
}

func benignDefaultConst(k Kind) string {
	switch k {
	case KindA:
		return "a"
	default:
		return "other"
	}
}

func completeType(n Node) int {
	switch x := n.(type) {
	case Leaf:
		return 1
	case *Branch:
		return completeType(x.L) + completeType(x.R)
	}
	return 0
}

func missingType(n Node) int {
	switch n.(type) { // want "non-exhaustive type switch over closed set" "missing *Branch"
	case Leaf:
		return 1
	default:
		panic("unknown node")
	}
}

func allowedMissingType(n Node) int {
	//lint:allow exhaustive fixture demonstrates suppression
	switch n.(type) {
	case Leaf:
		return 1
	default:
		panic("unknown node")
	}
}

func openSwitch(o Open) int {
	switch o.(type) {
	case onlyImpl:
		return 1
	}
	return 0
}
