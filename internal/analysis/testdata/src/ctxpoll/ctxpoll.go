// Package ctxpoll is a sgmldbvet fixture: row-scan loops over valuation
// slices must poll context cancellation.
package ctxpoll

// Valuation mirrors the engine's row type by name; the analyzer matches
// slices of any named type called Valuation.
type Valuation map[string]int

type evalCtx struct{ cancelled bool }

func (c *evalCtx) err() error {
	if c.cancelled {
		return errCancelled
	}
	return nil
}

type cancelErr struct{}

func (cancelErr) Error() string { return "cancelled" }

var errCancelled = cancelErr{}

func scanNoPoll(in []Valuation) int {
	total := 0
	for range in { // want "does not poll context cancellation"
		total++
	}
	return total
}

func scanStrided(c *evalCtx, in []Valuation) (int, error) {
	total := 0
	for i := range in {
		if i%64 == 0 {
			if err := c.err(); err != nil {
				return 0, err
			}
		}
		total++
	}
	return total, nil
}

func countNoPoll(in []Valuation) int {
	n := 0
	for i := 0; i < len(in); i++ { // want "does not poll context cancellation"
		n++
	}
	return n
}

func countPolled(c *evalCtx, in []Valuation) (int, error) {
	n := 0
	for i := 0; i < len(in); i++ {
		if err := c.err(); err != nil {
			return 0, err
		}
		n++
	}
	return n, nil
}

func parallelScan(c *evalCtx, in []Valuation, run func(func())) {
	for range in {
		// The poll may live in a function literal the loop hands off.
		run(func() { _ = c.err() })
	}
}

func allowedScan(in []Valuation) int {
	total := 0
	//lint:allow ctxpoll fixture demonstrates suppression
	for range in {
		total++
	}
	return total
}

func notValuations(in []int) int {
	total := 0
	for range in {
		total++
	}
	return total
}
