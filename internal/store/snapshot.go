package store

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"

	"sgmldb/internal/object"
)

// This file implements snapshot persistence: a database (schema + instance)
// is written to and read back from a single file. The encoding is a
// line-oriented text format with length-prefixed strings, so it is
// deterministic, diffable, and independent of Go's reflection-based
// serialisers (the model's values and types are interfaces with unexported
// structure).

const snapshotMagic = "sgmldb-snapshot 1"

// SaveFile writes the database snapshot to path.
func SaveFile(path string, inst *Instance) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	if err := Save(w, inst); err != nil {
		f.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a database snapshot from path.
func LoadFile(path string) (*Instance, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(bufio.NewReader(f))
}

// Save writes the snapshot of inst (schema and data) to w. Method bodies
// (μ) are code and are not serialised; they must be re-bound after Load.
func Save(w io.Writer, inst *Instance) error {
	s := inst.Schema()
	if _, err := fmt.Fprintln(w, snapshotMagic); err != nil {
		return err
	}
	var b strings.Builder
	for _, c := range s.Hierarchy().Classes() {
		b.Reset()
		b.WriteString("class ")
		writeString(&b, c)
		t, _ := s.Hierarchy().TypeOf(c)
		b.WriteByte(' ')
		encodeType(&b, t)
		b.WriteByte('\n')
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
		for _, p := range s.Hierarchy().Parents(c) {
			b.Reset()
			b.WriteString("inherits ")
			writeString(&b, c)
			b.WriteByte(' ')
			writeString(&b, p)
			b.WriteByte('\n')
			if _, err := io.WriteString(w, b.String()); err != nil {
				return err
			}
		}
		for _, con := range s.Constraints(c) {
			b.Reset()
			b.WriteString("constraint ")
			writeString(&b, c)
			b.WriteByte(' ')
			if err := encodeConstraint(&b, con); err != nil {
				return err
			}
			b.WriteByte('\n')
			if _, err := io.WriteString(w, b.String()); err != nil {
				return err
			}
		}
	}
	// Private attributes.
	for _, c := range s.Hierarchy().Classes() {
		t, _ := s.Hierarchy().TypeOf(c)
		if tt, ok := t.(object.TupleType); ok {
			for _, f := range tt.Fields() {
				if s.IsPrivate(c, f.Name) {
					b.Reset()
					b.WriteString("private ")
					writeString(&b, c)
					b.WriteByte(' ')
					writeString(&b, f.Name)
					b.WriteByte('\n')
					if _, err := io.WriteString(w, b.String()); err != nil {
						return err
					}
				}
			}
		}
	}
	for _, m := range s.Methods() {
		b.Reset()
		b.WriteString("method ")
		writeString(&b, m.Class)
		b.WriteByte(' ')
		writeString(&b, m.Name)
		b.WriteByte(' ')
		b.WriteString(strconv.Itoa(len(m.Params)))
		for _, p := range m.Params {
			b.WriteByte(' ')
			encodeType(&b, p)
		}
		b.WriteByte(' ')
		if m.Result != nil {
			encodeType(&b, m.Result)
		} else {
			b.WriteByte('-')
		}
		b.WriteByte('\n')
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	for _, g := range s.Roots() {
		t, _ := s.RootType(g)
		b.Reset()
		b.WriteString("rootdecl ")
		writeString(&b, g)
		b.WriteByte(' ')
		encodeType(&b, t)
		b.WriteByte('\n')
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	// Data: objects then roots.
	for _, o := range inst.Objects() {
		c, _ := inst.ClassOf(o)
		v, _ := inst.Deref(o)
		b.Reset()
		b.WriteString("object ")
		b.WriteString(strconv.FormatUint(uint64(o), 10))
		b.WriteByte(' ')
		writeString(&b, c)
		b.WriteByte(' ')
		encodeValue(&b, v)
		b.WriteByte('\n')
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	for _, g := range s.Roots() {
		v, ok := inst.Root(g)
		if !ok {
			continue
		}
		b.Reset()
		b.WriteString("rootval ")
		writeString(&b, g)
		b.WriteByte(' ')
		encodeValue(&b, v)
		b.WriteByte('\n')
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "end")
	return err
}

// Load reads a snapshot written by Save.
func Load(r io.Reader) (*Instance, error) {
	br := bufio.NewReader(r)
	line, err := readLine(br)
	if err != nil {
		return nil, err
	}
	if line != snapshotMagic {
		return nil, fmt.Errorf("store: not a snapshot file (got %q)", line)
	}
	schema := NewSchema()
	inst := NewInstance(schema)
	var maxOID object.OID
	for {
		line, err := readLine(br)
		if err == io.EOF {
			return nil, fmt.Errorf("store: truncated snapshot (missing end)")
		}
		if err != nil {
			return nil, err
		}
		if line == "end" {
			break
		}
		verb, rest, _ := strings.Cut(line, " ")
		p := &parser{s: rest}
		switch verb {
		case "class":
			name := p.str()
			p.space()
			t := p.typ()
			if p.err != nil {
				return nil, fmt.Errorf("store: bad class line: %w", p.err)
			}
			if err := schema.AddClass(name, t); err != nil {
				return nil, err
			}
		case "inherits":
			c := p.str()
			p.space()
			sup := p.str()
			if p.err != nil {
				return nil, fmt.Errorf("store: bad inherits line: %w", p.err)
			}
			if err := schema.AddInherits(c, sup); err != nil {
				return nil, err
			}
		case "constraint":
			c := p.str()
			p.space()
			con := p.constraint()
			if p.err != nil {
				return nil, fmt.Errorf("store: bad constraint line: %w", p.err)
			}
			if err := schema.AddConstraint(c, con); err != nil {
				return nil, err
			}
		case "private":
			c := p.str()
			p.space()
			a := p.str()
			if p.err != nil {
				return nil, fmt.Errorf("store: bad private line: %w", p.err)
			}
			if err := schema.MarkPrivate(c, a); err != nil {
				return nil, err
			}
		case "method":
			c := p.str()
			p.space()
			name := p.str()
			p.space()
			n := p.int()
			params := make([]object.Type, n)
			for i := 0; i < n; i++ {
				p.space()
				params[i] = p.typ()
			}
			p.space()
			var result object.Type
			if !p.lit("-") {
				result = p.typ()
			}
			if p.err != nil {
				return nil, fmt.Errorf("store: bad method line: %w", p.err)
			}
			if err := schema.AddMethod(MethodSig{Class: c, Name: name, Params: params, Result: result}); err != nil {
				return nil, err
			}
		case "rootdecl":
			g := p.str()
			p.space()
			t := p.typ()
			if p.err != nil {
				return nil, fmt.Errorf("store: bad rootdecl line: %w", p.err)
			}
			if err := schema.AddRoot(g, t); err != nil {
				return nil, err
			}
		case "object":
			idStr, rest2, ok := strings.Cut(rest, " ")
			if !ok {
				return nil, fmt.Errorf("store: bad object line %q", line)
			}
			id, err := strconv.ParseUint(idStr, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("store: bad oid %q", idStr)
			}
			p = &parser{s: rest2}
			c := p.str()
			p.space()
			v := p.value()
			if p.err != nil {
				return nil, fmt.Errorf("store: bad object line: %w", p.err)
			}
			o := object.OID(id)
			if o > maxOID {
				maxOID = o
			}
			inst.class[o] = c
			inst.extent[c] = append(inst.extent[c], o)
			inst.values[o] = v
		case "rootval":
			g := p.str()
			p.space()
			v := p.value()
			if p.err != nil {
				return nil, fmt.Errorf("store: bad rootval line: %w", p.err)
			}
			if err := inst.SetRoot(g, v); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("store: unknown snapshot verb %q", verb)
		}
	}
	inst.nextID = maxOID + 1
	if err := schema.Check(); err != nil {
		return nil, err
	}
	return inst, nil
}

func readLine(r *bufio.Reader) (string, error) {
	line, err := r.ReadString('\n')
	if err == io.EOF && line != "" {
		return strings.TrimRight(line, "\n"), nil
	}
	if err != nil {
		return "", err
	}
	return strings.TrimRight(line, "\n"), nil
}

// writeString emits a length-prefixed string: <len>:<bytes>.
func writeString(b *strings.Builder, s string) {
	b.WriteString(strconv.Itoa(len(s)))
	b.WriteByte(':')
	b.WriteString(s)
}

// encodeType emits a parseable type encoding.
func encodeType(b *strings.Builder, t object.Type) {
	switch ty := t.(type) {
	case object.AtomicType:
		switch ty.K {
		case object.TypeInt:
			b.WriteString("ti")
		case object.TypeFloat:
			b.WriteString("tf")
		case object.TypeString:
			b.WriteString("ts")
		case object.TypeBool:
			b.WriteString("tb")
		default:
			// non-atomic kinds never label an AtomicType
		}
	case object.AnyType:
		b.WriteString("ta")
	case object.ClassType:
		b.WriteString("tc")
		writeString(b, ty.Name)
	case object.ListType:
		b.WriteString("tl")
		encodeType(b, ty.Elem)
	case object.SetType:
		b.WriteString("tS")
		encodeType(b, ty.Elem)
	case object.TupleType:
		b.WriteString("tt")
		b.WriteString(strconv.Itoa(ty.Len()))
		b.WriteByte('{')
		for _, f := range ty.Fields() {
			writeString(b, f.Name)
			encodeType(b, f.Type)
		}
		b.WriteByte('}')
	case object.UnionType:
		b.WriteString("tu")
		b.WriteString(strconv.Itoa(ty.Len()))
		b.WriteByte('{')
		for _, a := range ty.Alts() {
			writeString(b, a.Name)
			encodeType(b, a.Type)
		}
		b.WriteByte('}')
	default:
		//lint:allow panic unreachable: the switch covers the closed object.Type set (enforced by sgmldbvet exhaustive)
		panic(fmt.Sprintf("store: cannot encode type %T", t))
	}
}

// encodeValue emits a parseable value encoding.
func encodeValue(b *strings.Builder, v object.Value) {
	switch x := v.(type) {
	case nil, object.Nil:
		b.WriteString("vn")
	case object.Int:
		b.WriteString("vi")
		b.WriteString(strconv.FormatInt(int64(x), 10))
		b.WriteByte(';')
	case object.Float:
		b.WriteString("vf")
		b.WriteString(strconv.FormatUint(math.Float64bits(float64(x)), 16))
		b.WriteByte(';')
	case object.String_:
		b.WriteString("vs")
		writeString(b, string(x))
	case object.Bool:
		if x {
			b.WriteString("vT")
		} else {
			b.WriteString("vF")
		}
	case object.OID:
		b.WriteString("vo")
		b.WriteString(strconv.FormatUint(uint64(x), 10))
		b.WriteByte(';')
	case *object.Tuple:
		b.WriteString("vt")
		b.WriteString(strconv.Itoa(x.Len()))
		b.WriteByte('{')
		for i := 0; i < x.Len(); i++ {
			f := x.At(i)
			writeString(b, f.Name)
			encodeValue(b, f.Value)
		}
		b.WriteByte('}')
	case *object.List:
		b.WriteString("vl")
		b.WriteString(strconv.Itoa(x.Len()))
		b.WriteByte('{')
		for i := 0; i < x.Len(); i++ {
			encodeValue(b, x.At(i))
		}
		b.WriteByte('}')
	case *object.Set:
		b.WriteString("vS")
		b.WriteString(strconv.Itoa(x.Len()))
		b.WriteByte('{')
		for i := 0; i < x.Len(); i++ {
			encodeValue(b, x.At(i))
		}
		b.WriteByte('}')
	case *object.Union_:
		b.WriteString("vu")
		writeString(b, x.Marker)
		encodeValue(b, x.Value)
	default:
		//lint:allow panic unreachable: the switch covers the closed object.Value set (enforced by sgmldbvet exhaustive)
		panic(fmt.Sprintf("store: cannot encode value %T", v))
	}
}

// encodeConstraint emits a parseable constraint encoding.
func encodeConstraint(b *strings.Builder, c Constraint) error {
	switch con := c.(type) {
	case NotNil:
		b.WriteString("cn")
		writeString(b, con.Attr)
	case NotEmptyList:
		b.WriteString("ce")
		writeString(b, con.Attr)
	case InSet:
		b.WriteString("cs")
		writeString(b, con.Attr)
		b.WriteString(strconv.Itoa(len(con.Values)))
		b.WriteByte('{')
		for _, v := range con.Values {
			encodeValue(b, v)
		}
		b.WriteByte('}')
	case OnAlt:
		b.WriteString("ca")
		writeString(b, con.Marker)
		b.WriteString(strconv.Itoa(len(con.Inner)))
		b.WriteByte('{')
		for _, inner := range con.Inner {
			if err := encodeConstraint(b, inner); err != nil {
				return err
			}
		}
		b.WriteByte('}')
	case AnyOf:
		b.WriteString("co")
		b.WriteString(strconv.Itoa(len(con.Alts)))
		b.WriteByte('{')
		for _, a := range con.Alts {
			if err := encodeConstraint(b, a); err != nil {
				return err
			}
		}
		b.WriteByte('}')
	default:
		return fmt.Errorf("store: cannot encode constraint %T", c)
	}
	return nil
}

// parser decodes the encodings above.
type parser struct {
	s   string
	pos int
	err error
}

func (p *parser) fail(format string, args ...any) {
	if p.err == nil {
		p.err = fmt.Errorf(format+" at %d in %q", append(args, p.pos, p.s)...)
	}
}

func (p *parser) byte() byte {
	if p.err != nil {
		return 0
	}
	if p.pos >= len(p.s) {
		p.fail("unexpected end")
		return 0
	}
	c := p.s[p.pos]
	p.pos++
	return c
}

func (p *parser) lit(s string) bool {
	if p.err != nil {
		return false
	}
	if strings.HasPrefix(p.s[p.pos:], s) {
		p.pos += len(s)
		return true
	}
	return false
}

func (p *parser) space() {
	if !p.lit(" ") {
		p.fail("expected space")
	}
}

func (p *parser) int() int {
	if p.err != nil {
		return 0
	}
	start := p.pos
	if p.pos < len(p.s) && (p.s[p.pos] == '-' || p.s[p.pos] == '+') {
		p.pos++
	}
	for p.pos < len(p.s) && p.s[p.pos] >= '0' && p.s[p.pos] <= '9' {
		p.pos++
	}
	n, err := strconv.Atoi(p.s[start:p.pos])
	if err != nil {
		p.fail("bad integer")
		return 0
	}
	return n
}

// str reads a length-prefixed string <len>:<bytes>.
func (p *parser) str() string {
	n := p.int()
	if p.err != nil {
		return ""
	}
	if !p.lit(":") {
		p.fail("expected ':' after string length")
		return ""
	}
	if p.pos+n > len(p.s) {
		p.fail("string overruns input")
		return ""
	}
	s := p.s[p.pos : p.pos+n]
	p.pos += n
	return s
}

func (p *parser) typ() object.Type {
	if !p.lit("t") {
		p.fail("expected type")
		return nil
	}
	switch c := p.byte(); c {
	case 'i':
		return object.IntType
	case 'f':
		return object.FloatType
	case 's':
		return object.StringType
	case 'b':
		return object.BoolType
	case 'a':
		return object.Any
	case 'c':
		return object.Class(p.str())
	case 'l':
		return object.ListOf(p.typ())
	case 'S':
		return object.SetOf(p.typ())
	case 't':
		n := p.int()
		if !p.lit("{") {
			p.fail("expected '{'")
			return nil
		}
		fs := make([]object.TField, n)
		for i := 0; i < n; i++ {
			fs[i] = object.TField{Name: p.str(), Type: p.typ()}
		}
		if !p.lit("}") {
			p.fail("expected '}'")
			return nil
		}
		if p.err != nil {
			return nil
		}
		return object.TupleOf(fs...)
	case 'u':
		n := p.int()
		if !p.lit("{") {
			p.fail("expected '{'")
			return nil
		}
		as := make([]object.TField, n)
		for i := 0; i < n; i++ {
			as[i] = object.TField{Name: p.str(), Type: p.typ()}
		}
		if !p.lit("}") {
			p.fail("expected '}'")
			return nil
		}
		if p.err != nil {
			return nil
		}
		return object.UnionOf(as...)
	default:
		p.fail("unknown type tag %q", string(c))
		return nil
	}
}

func (p *parser) value() object.Value {
	if !p.lit("v") {
		p.fail("expected value")
		return object.Nil{}
	}
	switch c := p.byte(); c {
	case 'n':
		return object.Nil{}
	case 'i':
		n := p.int()
		if !p.lit(";") {
			p.fail("expected ';'")
		}
		return object.Int(n)
	case 'f':
		start := p.pos
		for p.pos < len(p.s) && p.s[p.pos] != ';' {
			p.pos++
		}
		bits, err := strconv.ParseUint(p.s[start:p.pos], 16, 64)
		if err != nil {
			p.fail("bad float bits")
			return object.Nil{}
		}
		p.lit(";")
		return object.Float(math.Float64frombits(bits))
	case 's':
		return object.String_(p.str())
	case 'T':
		return object.Bool(true)
	case 'F':
		return object.Bool(false)
	case 'o':
		n := p.int()
		if !p.lit(";") {
			p.fail("expected ';'")
		}
		return object.OID(uint64(n))
	case 't':
		n := p.int()
		if !p.lit("{") {
			p.fail("expected '{'")
			return object.Nil{}
		}
		fs := make([]object.Field, n)
		for i := 0; i < n; i++ {
			fs[i] = object.Field{Name: p.str(), Value: p.value()}
		}
		if !p.lit("}") {
			p.fail("expected '}'")
			return object.Nil{}
		}
		if p.err != nil {
			return object.Nil{}
		}
		return object.NewTuple(fs...)
	case 'l':
		n := p.int()
		if !p.lit("{") {
			p.fail("expected '{'")
			return object.Nil{}
		}
		es := make([]object.Value, n)
		for i := 0; i < n; i++ {
			es[i] = p.value()
		}
		if !p.lit("}") {
			p.fail("expected '}'")
			return object.Nil{}
		}
		return object.NewList(es...)
	case 'S':
		n := p.int()
		if !p.lit("{") {
			p.fail("expected '{'")
			return object.Nil{}
		}
		es := make([]object.Value, n)
		for i := 0; i < n; i++ {
			es[i] = p.value()
		}
		if !p.lit("}") {
			p.fail("expected '}'")
			return object.Nil{}
		}
		return object.NewSet(es...)
	case 'u':
		m := p.str()
		return object.NewUnion(m, p.value())
	default:
		p.fail("unknown value tag %q", string(c))
		return object.Nil{}
	}
}

func (p *parser) constraint() Constraint {
	if !p.lit("c") {
		p.fail("expected constraint")
		return nil
	}
	switch c := p.byte(); c {
	case 'n':
		return NotNil{Attr: p.str()}
	case 'e':
		return NotEmptyList{Attr: p.str()}
	case 's':
		attr := p.str()
		n := p.int()
		if !p.lit("{") {
			p.fail("expected '{'")
			return nil
		}
		vs := make([]object.Value, n)
		for i := 0; i < n; i++ {
			vs[i] = p.value()
		}
		if !p.lit("}") {
			p.fail("expected '}'")
			return nil
		}
		return InSet{Attr: attr, Values: vs}
	case 'a':
		m := p.str()
		n := p.int()
		if !p.lit("{") {
			p.fail("expected '{'")
			return nil
		}
		inner := make([]Constraint, n)
		for i := 0; i < n; i++ {
			inner[i] = p.constraint()
		}
		if !p.lit("}") {
			p.fail("expected '}'")
			return nil
		}
		return OnAlt{Marker: m, Inner: inner}
	case 'o':
		n := p.int()
		if !p.lit("{") {
			p.fail("expected '{'")
			return nil
		}
		alts := make([]Constraint, n)
		for i := 0; i < n; i++ {
			alts[i] = p.constraint()
		}
		if !p.lit("}") {
			p.fail("expected '}'")
			return nil
		}
		return AnyOf{Alts: alts}
	default:
		p.fail("unknown constraint tag %q", string(c))
		return nil
	}
}
