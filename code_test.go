package sgmldb

import (
	"context"
	"fmt"
	"testing"
)

// TestCodeRoundTrip asserts every exported sentinel maps to its own
// distinct, non-empty code — the wire contract cmd/sgmldbd builds its
// error bodies on — and that wrapping does not lose the classification.
func TestCodeRoundTrip(t *testing.T) {
	sentinels := []struct {
		err  error
		want string
	}{
		{ErrParse, CodeParse},
		{ErrTypecheck, CodeTypecheck},
		{ErrOverloaded, CodeOverloaded},
		{ErrBudgetExceeded, CodeBudget},
		{ErrInternal, CodeInternal},
		{ErrReadOnly, CodeReadOnly},
		{ErrUnknownObject, CodeUnknownObject},
		{ErrNoMapping, CodeNoMapping},
		{ErrCorruptLog, CodeCorruptLog},
		{ErrUnsupportedVersion, CodeUnsupported},
	}
	seen := map[string]error{}
	for _, s := range sentinels {
		got := Code(s.err)
		if got != s.want {
			t.Errorf("Code(%v) = %q, want %q", s.err, got, s.want)
		}
		if got == CodeOK || got == CodeUnknown {
			t.Errorf("sentinel %v has no distinct code (got %q)", s.err, got)
		}
		if prev, dup := seen[got]; dup {
			t.Errorf("code %q is shared by %v and %v", got, prev, s.err)
		}
		seen[got] = s.err
		// Wrapping must not lose the classification.
		if wrapped := fmt.Errorf("context: %w", s.err); Code(wrapped) != s.want {
			t.Errorf("Code(wrapped %v) = %q, want %q", s.err, Code(wrapped), s.want)
		}
	}
	if got := Code(nil); got != CodeOK {
		t.Errorf("Code(nil) = %q, want %q", got, CodeOK)
	}
	if got := Code(context.Canceled); got != CodeCanceled {
		t.Errorf("Code(context.Canceled) = %q, want %q", got, CodeCanceled)
	}
	if got := Code(context.DeadlineExceeded); got != CodeDeadline {
		t.Errorf("Code(context.DeadlineExceeded) = %q, want %q", got, CodeDeadline)
	}
	if got := Code(fmt.Errorf("novel failure")); got != CodeUnknown {
		t.Errorf("Code(novel) = %q, want %q", got, CodeUnknown)
	}
}

// TestCodeFromLiveErrors asserts the classification holds for errors
// produced by the real engine, not just the bare sentinels.
func TestCodeFromLiveErrors(t *testing.T) {
	db := openWideDB(t)
	if _, err := db.Query(`select from where`); Code(err) != CodeParse {
		t.Errorf("malformed query: Code = %q (err %v), want %q", Code(err), err, CodeParse)
	}
	if _, err := db.Query(`select x from x in NoSuchRoot`); Code(err) != CodeTypecheck {
		t.Errorf("unknown root: Code = %q (err %v), want %q", Code(err), err, CodeTypecheck)
	}
	if _, err := db.QueryContext(context.Background(), wideQuery, QMaxRows(1)); Code(err) != CodeBudget {
		t.Errorf("budget kill: Code = %q (err %v), want %q", Code(err), err, CodeBudget)
	}
}
