package oql

import (
	"testing"

	"sgmldb/internal/object"
)

func TestParserDotDotWithoutAttribute(t *testing.T) {
	// ".." with no following attribute is a bare anonymous path variable:
	// "my_doc .." enumerates paths like "my_doc PATH_p".
	e, err := Parse(`my_doc ..`)
	if err != nil {
		t.Fatal(err)
	}
	pe := e.(PathExpr)
	if len(pe.Elems) != 1 {
		t.Fatalf("elems = %v", pe.Elems)
	}
	if _, ok := pe.Elems[0].(DotDotP); !ok {
		t.Errorf("elem = %T", pe.Elems[0])
	}
}

func TestParserElementAndQuantifiers(t *testing.T) {
	e, err := Parse(`element(select x from x in S)`)
	if err != nil {
		t.Fatal(err)
	}
	call := e.(Call)
	if call.Name != "element" || len(call.Args) != 1 {
		t.Fatalf("call = %v", call)
	}
	e2, err := Parse(`exists x in S: x > 3`)
	if err != nil {
		t.Fatal(err)
	}
	ex := e2.(ExistsExpr)
	if ex.Var != "x" {
		t.Errorf("exists var = %s", ex.Var)
	}
	e3, err := Parse(`forall x in S: x > 3`)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := e3.(ForallExpr); !ok {
		t.Errorf("forall = %T", e3)
	}
	// String forms re-parse.
	for _, ast := range []Expr{e, e2, e3} {
		if _, err := Parse(ast.String()); err != nil {
			t.Errorf("%s does not re-parse: %v", ast, err)
		}
	}
}

func TestParserPlusIsUnion(t *testing.T) {
	e, err := Parse(`set(1) + set(2)`)
	if err != nil {
		t.Fatal(err)
	}
	bin := e.(Binary)
	if bin.Op != OpUnion {
		t.Errorf("+ lowers to %v", bin.Op)
	}
	e2, err := Parse(`set(1) except set(2)`)
	if err != nil {
		t.Fatal(err)
	}
	if e2.(Binary).Op != OpExcept {
		t.Error("except keyword")
	}
}

func TestParserPatternNotAndNear(t *testing.T) {
	e, err := Parse(`select x from x in S where x contains (not "draft" and "final")`)
	if err != nil {
		t.Fatal(err)
	}
	w := e.(SelectExpr).Where.(ContainsExpr)
	and, ok := w.Pattern.(PatAnd)
	if !ok {
		t.Fatalf("pattern = %T", w.Pattern)
	}
	if _, ok := and.L.(PatNot); !ok {
		t.Errorf("left = %T", and.L)
	}
	// near as a condition.
	e2, err := Parse(`select x from x in S where near(x, "a", "b", 2)`)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := e2.(SelectExpr).Where.(NearCond); !ok {
		t.Errorf("where = %T", e2.(SelectExpr).Where)
	}
}

func TestBareDotDotEvaluates(t *testing.T) {
	e := articleEngine(t)
	// The bare anonymous variable returns the set of all paths — the Q4
	// building block without naming a variable.
	got, err := e.Query(`my_old_article ..`)
	if err != nil {
		t.Fatal(err)
	}
	if got.(*object.Set).Len() < 10 {
		t.Errorf("all paths = %s", got)
	}
	// And set operations work on it directly.
	diff, err := e.Query(`(my_article ..) - (my_old_article ..)`)
	if err != nil {
		t.Fatal(err)
	}
	if diff.(*object.Set).Len() == 0 {
		t.Error("difference of anonymous path sets")
	}
}

func TestDistinctKeywordAccepted(t *testing.T) {
	e := articleEngine(t)
	// O₂SQL's select distinct is a no-op here (results are sets anyway).
	v1, err := e.Query(`select distinct a from a in Articles`)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := e.Query(`select a from a in Articles`)
	if err != nil {
		t.Fatal(err)
	}
	if !object.Equal(v1, v2) {
		t.Error("distinct changed the result")
	}
}
