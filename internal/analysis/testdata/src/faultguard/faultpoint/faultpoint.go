// Package faultpoint is a stub of the real fault-injection package with
// just enough API surface for the faultguard fixture to compile. The
// analyzer matches uses by package name, so the stub exercises the same
// paths as the real thing without the fixture depending on internal/.
package faultpoint

// Point is one named injection site.
type Point struct{ name string }

// New declares a site.
func New(name string) *Point { return &Point{name: name} }

// Hit fires the site.
func (p *Point) Hit() error { return nil }

// Arm installs an injector.
func Arm(name string, fire func() error) func() { return func() {} }

// Error returns an always-failing injector.
func Error(err error) func() error { return func() error { return err } }

// Once wraps an injector to fire a single time.
func Once(fire func() error) func() error { return fire }

// After wraps an injector to fire from the nth hit on.
func After(n int, fire func() error) func() error { return fire }

// DisarmAll disarms every site.
func DisarmAll() {}

// Names enumerates the declared sites.
func Names() []string { return nil }
