package sgmldb

// An end-to-end integration scenario on a second document type: a play
// (acts, scenes, speeches) with deep regular nesting — the "libraries,
// technical documentation" class of applications from the paper's
// introduction. Everything runs through the public facade, under both
// evaluators.

import (
	"strings"
	"testing"

	"sgmldb/internal/object"
)

const playDTD = `<!DOCTYPE play [
<!ELEMENT play - - (title, personae, act+)>
<!ELEMENT title - O (#PCDATA)>
<!ELEMENT personae - O (persona+)>
<!ELEMENT persona - O (#PCDATA)>
<!ELEMENT act - O (title, scene+)>
<!ELEMENT scene - O (title, (speech | stagedir)+)>
<!ELEMENT speech - O (speaker, line+)>
<!ELEMENT speaker - O (#PCDATA)>
<!ELEMENT line - O (#PCDATA)>
<!ELEMENT stagedir - O (#PCDATA)>
]>`

const hamletish = `<play>
<title>The Tragedy of Testing</title>
<personae>
<persona>GOPHER, a rodent of Denmark
<persona>LINTER, his faithful companion
</personae>
<act><title>Act I</title>
<scene><title>A terminal. Night.</title>
<stagedir>Enter GOPHER.
<speech><speaker>GOPHER</speaker>
<line>To test, or not to test: that is the question.
<line>Whether 'tis nobler in the heap to suffer
</speech>
<speech><speaker>LINTER</speaker>
<line>The slings and arrows of outrageous pointers.
</speech>
</scene>
<scene><title>The same. Later.</title>
<speech><speaker>GOPHER</speaker>
<line>Alas, poor segfault! I knew him well.
</speech>
</scene>
</act>
<act><title>Act II</title>
<scene><title>A code review.</title>
<speech><speaker>LINTER</speaker>
<line>Something is rotten in the state of main.
</speech>
</scene>
</act>
</play>`

func playDB(t *testing.T) *Database {
	t.Helper()
	db, err := OpenDTD(playDTD)
	if err != nil {
		t.Fatal(err)
	}
	oid, err := db.LoadDocument(hamletish)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Name("the_play", oid); err != nil {
		t.Fatal(err)
	}
	if errs := db.Check(); len(errs) != 0 {
		t.Fatalf("play instance invalid: %v", errs)
	}
	return db
}

func TestPlaySchemaShape(t *testing.T) {
	db := playDB(t)
	out := db.SchemaString()
	for _, want := range []string{
		"class Play public type tuple(title: Title, personae: Personae, acts: list(Act))",
		"class Scene public type tuple(title: Title, ",
		"class Speech public type tuple(speaker: Speaker, lines: list(Line))",
		// The unnamed (speech | stagedir)+ group gets the system-supplied
		// field name a1 (the paper's convention for unnamed groups).
		"a1: list((speech: Speech + stagedir: Stagedir))",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("schema missing %q in:\n%s", want, out)
		}
	}
	// The mixed (speech | stagedir)+ member becomes a list of a union.
	if !strings.Contains(out, "(speech: Speech + stagedir: Stagedir)") {
		t.Errorf("scene body union missing:\n%s", out)
	}
}

func TestPlayQueries(t *testing.T) {
	db := playDB(t)
	for _, mode := range []bool{false, true} {
		db.UseAlgebra(mode)

		// Every speaker, through path variables.
		speakers, err := db.Query(`select s from the_play PATH_p.speaker(s)`)
		if err != nil {
			t.Fatal(err)
		}
		names := map[string]bool{}
		for _, v := range speakers.(*object.Set).Elems() {
			names[db.Text(v)] = true
		}
		if !names["GOPHER"] || !names["LINTER"] {
			t.Errorf("algebra=%v speakers = %v", mode, names)
		}

		// Speeches containing a word, IRS-style.
		speeches, err := db.Query(`
select sp
from a in the_play.acts, sc in a.scenes, sp in sc.a1
where sp contains "question"`)
		if err != nil {
			t.Fatal(err)
		}
		if speeches.(*object.Set).Len() != 1 {
			t.Errorf("algebra=%v speeches = %s", mode, speeches)
		}

		// Scenes of act I (ordered access).
		v, err := db.Query(`count(the_play.acts[0].scenes)`)
		if err != nil {
			t.Fatal(err)
		}
		if !object.Equal(v, object.Int(2)) {
			t.Errorf("algebra=%v scene count = %s", mode, v)
		}

		// All titles at any depth (play, act, scene).
		titles, err := db.Query(`select t from the_play .. title(t)`)
		if err != nil {
			t.Fatal(err)
		}
		if titles.(*object.Set).Len() != 6 {
			t.Errorf("algebra=%v titles = %s", mode, titles)
		}
	}
}

func TestPlayWhereConnectives(t *testing.T) {
	db := playDB(t)
	// Acts containing a GOPHER speech but no stage direction.
	got, err := db.Query(`
select a
from a in the_play.acts
where (exists sc in a.scenes: exists sp in sc.a1: sp.speaker contains "GOPHER")
  and not (exists sc in a.scenes: exists sd in sc.a1: name_is_stagedir(sd))`)
	// name_is_stagedir is not a function: expect an error, then do it the
	// proper way — the union marker is queryable through ATT variables.
	if err == nil {
		t.Fatal("undefined function must fail")
	}
	got, err = db.Query(`
select a
from a in the_play.acts, sc in a.scenes, sp in sc.a1
where sp.speaker contains "GOPHER"`)
	if err != nil {
		t.Fatal(err)
	}
	if got.(*object.Set).Len() != 1 {
		t.Errorf("acts with GOPHER = %s", got)
	}
}

func TestPlayExportRoundTrip(t *testing.T) {
	db := playDB(t)
	root, _ := db.Instance().Root("the_play")
	out, err := db.Export(root.(object.OID))
	if err != nil {
		t.Fatal(err)
	}
	oid2, err := db.LoadDocument(out)
	if err != nil {
		t.Fatalf("re-load: %v\n%s", err, out)
	}
	if db.Text(root) != db.Text(oid2) {
		t.Error("export changed the play's text")
	}
	// Stage directions survive inside the union.
	if !strings.Contains(out, "<stagedir>") {
		t.Errorf("stagedir lost:\n%s", out)
	}
}

func TestPlayMarkerProjection(t *testing.T) {
	db := playDB(t)
	// Union markers are queryable: which kinds of scene content exist?
	rows, err := db.QueryRows(`select ATT_k from the_play .. a1[i].ATT_k(x)`)
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[string]bool{}
	for _, b := range rows.Bindings("k") {
		kinds[b.Attr] = true
	}
	if !kinds["speech"] || !kinds["stagedir"] {
		t.Errorf("content kinds = %v", kinds)
	}
}
