package sgml

import (
	"strings"
	"testing"
)

func TestDeclaredCharacterDataContent(t *testing.T) {
	// CDATA/RCDATA declared content is treated as character data.
	dtd, err := ParseDTD(`
<!ELEMENT doc - - (code, note)>
<!ELEMENT code - - CDATA>
<!ELEMENT note - - RCDATA>`)
	if err != nil {
		t.Fatal(err)
	}
	code, _ := dtd.Element("code")
	if _, ok := code.Content.(PCData); !ok {
		t.Errorf("CDATA content = %T", code.Content)
	}
	doc, err := ParseDocument(dtd, `<doc><code>x = y</code><note>a note</note></doc>`)
	if err != nil {
		t.Fatal(err)
	}
	// Element.Text concatenates raw character data (no separator is
	// invented between adjacent elements) and normalises whitespace.
	if got := doc.Root.Text(); got != "x = ya note" {
		t.Errorf("text = %q", got)
	}
}

func TestNotationDeclarationsSkipped(t *testing.T) {
	dtd, err := ParseDTD(`
<!NOTATION gif SYSTEM "gifview">
<!ELEMENT doc - - (#PCDATA)>`)
	if err != nil {
		t.Fatal(err)
	}
	if dtd.Name != "doc" {
		t.Errorf("Name = %s", dtd.Name)
	}
}

func TestFixedAttributeEnforced(t *testing.T) {
	dtd, err := ParseDTD(`
<!ELEMENT doc - - (#PCDATA)>
<!ATTLIST doc version CDATA #FIXED "1.0">`)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := ParseDocument(dtd, `<doc>x</doc>`)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := doc.Root.Attr("version"); v != "1.0" {
		t.Errorf("fixed default = %q", v)
	}
	if _, err := ParseDocument(dtd, `<doc version="2.0">x</doc>`); err == nil {
		t.Error("conflicting #FIXED value accepted")
	}
	if _, err := ParseDocument(dtd, `<doc version="1.0">x</doc>`); err != nil {
		t.Errorf("matching #FIXED value rejected: %v", err)
	}
}

func TestNumberAttributeValidation(t *testing.T) {
	dtd, err := ParseDTD(`
<!ELEMENT doc - - (#PCDATA)>
<!ATTLIST doc n NUMBER #IMPLIED>`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseDocument(dtd, `<doc n="12">x</doc>`); err != nil {
		t.Errorf("number rejected: %v", err)
	}
	if _, err := ParseDocument(dtd, `<doc n="twelve">x</doc>`); err == nil {
		t.Error("non-number accepted")
	}
}

func TestEntityAttributeValidation(t *testing.T) {
	dtd, err := ParseDTD(`
<!ENTITY pic SYSTEM "/img/pic">
<!ELEMENT doc - - (#PCDATA)>
<!ATTLIST doc file ENTITY #IMPLIED>`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseDocument(dtd, `<doc file="pic">x</doc>`); err != nil {
		t.Errorf("declared entity rejected: %v", err)
	}
	if _, err := ParseDocument(dtd, `<doc file="nope">x</doc>`); err == nil {
		t.Error("undeclared entity accepted")
	}
}

func TestParameterEntityInsideLiteral(t *testing.T) {
	dtd, err := ParseDTD(`
<!ENTITY % org "INRIA">
<!ENTITY lab "at %org; labs">
<!ELEMENT doc - - (#PCDATA)>`)
	if err != nil {
		t.Fatal(err)
	}
	e, _ := dtd.Entity("lab")
	if e.Text != "at INRIA labs" {
		t.Errorf("parameter entity in literal = %q", e.Text)
	}
	// Unknown parameter entities are left intact.
	dtd2, err := ParseDTD(`
<!ENTITY odd "100%% done">
<!ELEMENT doc - - (#PCDATA)>`)
	if err != nil {
		t.Fatal(err)
	}
	e2, _ := dtd2.Entity("odd")
	if !strings.Contains(e2.Text, "%") {
		t.Errorf("percent mangled: %q", e2.Text)
	}
}

func TestDerivAndFirstOnKeywordModels(t *testing.T) {
	// Empty / AnyContent / epsilon corner behaviours.
	e := Empty{}
	if len(e.deriv("x")) != 0 {
		t.Error("EMPTY derives nothing")
	}
	set := map[string]bool{}
	e.first(set)
	if len(set) != 0 {
		t.Error("EMPTY has no first set")
	}
	a := AnyContent{}
	if len(a.deriv("anything")) != 1 {
		t.Error("ANY derives itself")
	}
	eps := epsilon{}
	if !eps.nullable() || len(eps.deriv("x")) != 0 || eps.String() != "()" {
		t.Error("epsilon behaviour")
	}
	set2 := map[string]bool{}
	eps.first(set2)
	if len(set2) != 0 {
		t.Error("epsilon first")
	}
	m := NewMatcher(Seq{Items: []ContentModel{Name{"a"}}})
	if m.Model().String() != "(a)" && m.Model().String() != "a" {
		t.Errorf("Model = %s", m.Model())
	}
}

func TestSeqOfAndOfNormalisation(t *testing.T) {
	// seqOf flattens nested sequences and drops epsilons.
	s := seqOf([]ContentModel{epsilon{}, Seq{Items: []ContentModel{Name{"a"}, Name{"b"}}}, epsilon{}})
	if s.String() != "(a, b)" {
		t.Errorf("seqOf = %s", s)
	}
	if _, ok := seqOf([]ContentModel{epsilon{}}).(epsilon); !ok {
		t.Error("all-epsilon seq is epsilon")
	}
	if got := seqOf([]ContentModel{Name{"x"}}); got.String() != "x" {
		t.Errorf("singleton seq = %s", got)
	}
	a := andOf([]ContentModel{epsilon{}, Name{"a"}})
	if a.String() != "a" {
		t.Errorf("andOf singleton = %s", a)
	}
	if _, ok := andOf(nil).(epsilon); !ok {
		t.Error("empty and is epsilon")
	}
}

func TestDTDStringIncludesEntities(t *testing.T) {
	dtd, err := ParseDTD(`
<!ENTITY a "text">
<!ENTITY % p "stuff">
<!ENTITY e SYSTEM "/x" NDATA gif>
<!ELEMENT doc - - (#PCDATA)>`)
	if err != nil {
		t.Fatal(err)
	}
	out := dtd.String()
	for _, want := range []string{`<!ENTITY a "text">`, `<!ENTITY % p "stuff">`,
		`<!ENTITY e SYSTEM "/x" NDATA gif>`} {
		if !strings.Contains(out, want) {
			t.Errorf("String missing %q:\n%s", want, out)
		}
	}
}

func TestImpliedStartWithNestedData(t *testing.T) {
	// Data arriving where a required omissible-start element with PCDATA
	// content is expected implies that element's start tag.
	dtd, err := ParseDTD(`
<!ELEMENT entry - - (term, def)>
<!ELEMENT term - O (#PCDATA)>
<!ELEMENT def O O (#PCDATA)>`)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := ParseDocument(dtd, `<entry><term>word</term>the definition</entry>`)
	if err != nil {
		t.Fatal(err)
	}
	kids := doc.Root.ChildElements()
	if len(kids) != 2 || kids[1].Name != "def" || !kids[1].Implied {
		t.Fatalf("children = %v", kids)
	}
	if kids[1].Text() != "the definition" {
		t.Errorf("def text = %q", kids[1].Text())
	}
}

func TestXMLStyleEmptyElementTolerated(t *testing.T) {
	dtd, err := ParseDTD(`
<!ELEMENT doc - - (img, #PCDATA)>
<!ELEMENT img - O EMPTY>`)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := ParseDocument(dtd, `<doc><img/>caption</doc>`)
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Root.ChildElements()) != 1 {
		t.Error("img lost")
	}
}

func TestDocumentErrorsMore(t *testing.T) {
	dtd, err := ParseDTD(`<!ELEMENT doc - - (#PCDATA)>`)
	if err != nil {
		t.Fatal(err)
	}
	cases := []string{
		`<doc>unterminated comment <!-- oops</doc>`,
		`<doc`,                        // unterminated start tag
		`<doc><?pi never closed`,      // unterminated PI
		`<doc>text</doc><doc>x</doc>`, // two document elements
		`<doc x=">y</doc>`,            // unterminated attribute value... actually consumes to quote
	}
	for _, src := range cases {
		if _, err := ParseDocument(dtd, src); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}
