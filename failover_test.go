package sgmldb_test

// Failover chaos suite (make chaos runs it under -race): kill -9 the
// primary at every commit seam, promote the surviving durable follower,
// and prove the cluster comes out whole — the promoted node is a
// writable primary whose directory fscks clean, the restarted old
// primary rejoins as a follower with its stale (durable-but-unacked)
// suffix truncated at the term boundary, and no write that was ever
// acknowledged is lost. The fencing tests prove the other direction: an
// old primary that learns of a higher term refuses writes, and a
// follower that reaches a higher term refuses a stale source's frames.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"sgmldb"
	"sgmldb/internal/faultpoint"
	"sgmldb/internal/service"
	"sgmldb/internal/wal"
)

// failoverPrimary opens a durable primary in dir and serves it.
func failoverPrimary(t *testing.T, dtd, dir string) (*sgmldb.Database, *httptest.Server) {
	t.Helper()
	t.Cleanup(faultpoint.DisarmAll)
	db, err := sgmldb.OpenDTD(dtd, sgmldb.WithDataDir(dir), sgmldb.WithCheckpointEvery(-1))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	srv, err := service.New(db, service.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return db, ts
}

// durableFollower opens a durable (promotion-eligible) follower in dir
// and tails primaryURL until stop is called.
func durableFollower(t *testing.T, dtd, dir, primaryURL string) (*sgmldb.Database, func()) {
	t.Helper()
	fdb, err := sgmldb.OpenFollower(dtd, sgmldb.WithDataDir(dir), sgmldb.WithCheckpointEvery(-1))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fdb.Close() })
	fl := &service.Follower{DB: fdb, Primary: primaryURL, WaitMS: 200, MinBackoff: 2 * time.Millisecond}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- fl.Run(ctx) }()
	stopped := false
	stop := func() {
		if stopped {
			return
		}
		stopped = true
		cancel()
		if err := <-done; !errors.Is(err, context.Canceled) {
			t.Errorf("follower loop: %v", err)
		}
	}
	t.Cleanup(stop)
	return fdb, stop
}

// snapshotDir copies every regular file in src into a fresh temp dir —
// the "photograph" of a data directory at the instant of a kill.
func snapshotDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !e.Type().IsRegular() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// mustFsckClean runs the offline verifier over a data directory.
func mustFsckClean(t *testing.T, dir, what string) {
	t.Helper()
	rep, err := wal.Fsck(dir, false)
	if err != nil {
		t.Fatalf("fsck %s: %v", what, err)
	}
	if !rep.Clean() {
		t.Fatalf("fsck %s: not clean: %+v", what, rep)
	}
}

// TestChaosFailoverCommitSeams is the full failover drill at every WAL
// commit seam. The primary is photographed (kill -9 semantics) mid-
// commit, the caught-up durable follower is promoted, writes continue on
// the new primary, and the photograph restarts as a follower of the new
// primary. The post-fsync seam is the sharp case: the photograph holds a
// record that is durable on the old primary but was never acknowledged
// and never shipped — a stale term-1 suffix the rejoin must truncate at
// the term boundary, not replay.
func TestChaosFailoverCommitSeams(t *testing.T) {
	dtd, doc := replCorpus(t)
	for _, seam := range []string{"wal/append", "wal/post-append", "wal/post-fsync"} {
		t.Run(seam, func(t *testing.T) {
			pdir := t.TempDir()
			primary, ts := failoverPrimary(t, dtd, pdir)
			for i := 0; i < 2; i++ {
				if _, err := primary.LoadDocuments([]string{doc}); err != nil {
					t.Fatal(err)
				}
			}
			follower, stopTail := durableFollower(t, dtd, t.TempDir(), ts.URL)
			replWait(t, "initial catch-up", caughtUp(primary, follower))
			ackedSeq := replFeedSeq(t, primary)

			// Kill -9 mid-commit: photograph the primary's directory at the
			// seam, fail the load, then tear the primary down for good.
			var photo string
			disarm := faultpoint.Arm(seam, faultpoint.Once(func() error {
				photo = snapshotDir(t, pdir)
				return errReplBoom
			}))
			_, err := primary.LoadDocuments([]string{doc})
			disarm()
			if !errors.Is(err, errReplBoom) {
				t.Fatalf("load with %s armed: err = %v, want errReplBoom", seam, err)
			}
			stopTail()
			ts.Close()
			primary.Close()

			// Promote the survivor: writable primary at term 2, directory
			// fscks clean, and it takes new writes.
			newTerm, err := follower.Promote()
			if err != nil {
				t.Fatalf("Promote: %v", err)
			}
			if newTerm != 2 {
				t.Fatalf("Promote = term %d, want 2", newTerm)
			}
			if follower.IsFollower() {
				t.Fatal("promoted node still reports IsFollower")
			}
			oids, err := follower.LoadDocuments([]string{doc})
			if err != nil {
				t.Fatalf("load on promoted node: %v", err)
			}
			if err := follower.Name("after_failover", oids[0]); err != nil {
				t.Fatalf("name on promoted node: %v", err)
			}
			wantArticles := replArticleCount(t, follower)

			// The old primary restarts from its photograph as a follower of
			// the new primary and must converge — including truncating any
			// stale suffix the kill left durable.
			nsrv, err := service.New(follower, service.Config{})
			if err != nil {
				t.Fatal(err)
			}
			nts := httptest.NewServer(nsrv)
			defer nts.Close()
			rejoiner, _ := durableFollower(t, dtd, photo, nts.URL)
			replWait(t, "old primary rejoining", caughtUp(follower, rejoiner))

			if got := rejoiner.Term(); got != 2 {
				t.Errorf("rejoiner term = %d, want 2", got)
			}
			if got := replArticleCount(t, rejoiner); got != wantArticles {
				t.Errorf("rejoiner articles = %d, want %d (stale suffix must not survive)", got, wantArticles)
			}
			if got := replArticleCount(t, follower); got < 3 {
				t.Errorf("new primary articles = %d, want >= 3 (acked writes lost)", got)
			}
			if replFeedSeq(t, follower) < ackedSeq {
				t.Errorf("new primary seq %d below acked seq %d", replFeedSeq(t, follower), ackedSeq)
			}
			// The shipped name resolves on the rejoiner.
			if _, err := rejoiner.Query(`select t from after_failover PATH_p.title(t)`); err != nil {
				t.Errorf("rejoiner query over post-failover name: %v", err)
			}
		})
	}
}

// TestChaosFailoverRejoinerSurvivesRestart: after rejoining, the old
// primary's directory is a coherent term-2 follower state — fsck passes
// and a clean reopen resumes at the same position without re-bootstrap.
func TestChaosFailoverRejoinerSurvivesRestart(t *testing.T) {
	dtd, doc := replCorpus(t)
	pdir := t.TempDir()
	primary, ts := failoverPrimary(t, dtd, pdir)
	if _, err := primary.LoadDocuments([]string{doc}); err != nil {
		t.Fatal(err)
	}
	follower, stopTail := durableFollower(t, dtd, t.TempDir(), ts.URL)
	replWait(t, "catch-up", caughtUp(primary, follower))

	// Photograph a post-fsync kill: the doomed record is durable in the
	// photo but unshipped and unacknowledged.
	var photo string
	disarm := faultpoint.Arm("wal/post-fsync", faultpoint.Once(func() error {
		photo = snapshotDir(t, pdir)
		return errReplBoom
	}))
	if _, err := primary.LoadDocuments([]string{doc}); !errors.Is(err, errReplBoom) {
		t.Fatalf("killed load: %v", err)
	}
	disarm()
	stopTail()
	ts.Close()
	primary.Close()

	if _, err := follower.Promote(); err != nil {
		t.Fatal(err)
	}
	if _, err := follower.LoadDocuments([]string{doc}); err != nil {
		t.Fatal(err)
	}
	nsrv, err := service.New(follower, service.Config{})
	if err != nil {
		t.Fatal(err)
	}
	nts := httptest.NewServer(nsrv)
	defer nts.Close()
	rejoiner, stopRejoin := durableFollower(t, dtd, photo, nts.URL)
	replWait(t, "rejoin", caughtUp(follower, rejoiner))
	seq, term := rejoiner.AppliedSeq(), rejoiner.Term()
	stopRejoin()
	if err := rejoiner.Close(); err != nil {
		t.Fatal(err)
	}

	mustFsckClean(t, photo, "rejoined old primary")
	reopened, err := sgmldb.OpenFollower(dtd, sgmldb.WithDataDir(photo), sgmldb.WithCheckpointEvery(-1))
	if err != nil {
		t.Fatalf("reopening rejoined directory: %v", err)
	}
	defer reopened.Close()
	if got := reopened.AppliedSeq(); got != seq {
		t.Errorf("reopened applied seq = %d, want %d (durable follower must resume, not re-bootstrap)", got, seq)
	}
	if got := reopened.Term(); got != term {
		t.Errorf("reopened term = %d, want %d", got, term)
	}
	if got := replArticleCount(t, reopened); got != replArticleCount(t, follower) {
		t.Errorf("reopened articles = %d, want %d", got, replArticleCount(t, follower))
	}
}

// TestChaosFailoverFencing: once any feed client reports a higher term,
// the old primary fences itself — writes fail with STALE_TERM at the
// facade and 409 on the wire — while reads and the feed keep serving, so
// clients drain away instead of seeing a dead socket.
func TestChaosFailoverFencing(t *testing.T) {
	dtd, doc := replCorpus(t)
	primary, ts := failoverPrimary(t, dtd, t.TempDir())
	if _, err := primary.LoadDocuments([]string{doc}); err != nil {
		t.Fatal(err)
	}
	follower, stopTail := durableFollower(t, dtd, t.TempDir(), ts.URL)
	replWait(t, "catch-up", caughtUp(primary, follower))
	stopTail()
	if _, err := follower.Promote(); err != nil {
		t.Fatal(err)
	}

	// The promoted node's term reaches the old primary over the feed —
	// here via one poll carrying term=2, as the hardened client sends.
	resp, err := http.Get(fmt.Sprintf("%s/v1/feed?after=%d&term=%d&wait_ms=1", ts.URL, replFeedSeq(t, primary), follower.Term()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// Fenced: every write path refuses.
	if _, err := primary.LoadDocuments([]string{doc}); !errors.Is(err, sgmldb.ErrStaleTerm) {
		t.Fatalf("fenced primary LoadDocuments: err = %v, want ErrStaleTerm", err)
	}
	if err := primary.Name("nope", 1); !errors.Is(err, sgmldb.ErrStaleTerm) {
		t.Fatalf("fenced primary Name: err = %v, want ErrStaleTerm", err)
	}
	// On the wire it is 409 STALE_TERM.
	payload, err := json.Marshal(map[string]any{"documents": []string{doc}})
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(ts.URL+"/v1/load", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("fenced load over the wire: status %d, want 409", resp.StatusCode)
	}
	// Reads still serve.
	if got := replArticleCount(t, primary); got != 1 {
		t.Fatalf("fenced primary reads: %d articles, want 1", got)
	}
}

// TestChaosFailoverStaleSourceRejected: a follower that has applied a
// term-2 history refuses to tail a term-1 primary — polls error, nothing
// applies, state is untouched. This is what stops a misconfigured (or
// split-brained) re-point from silently forking a replica.
func TestChaosFailoverStaleSourceRejected(t *testing.T) {
	dtd, doc := replCorpus(t)
	oldPrimary, oldTS := failoverPrimary(t, dtd, t.TempDir())
	if _, err := oldPrimary.LoadDocuments([]string{doc}); err != nil {
		t.Fatal(err)
	}
	newPrimary, stopTail := durableFollower(t, dtd, t.TempDir(), oldTS.URL)
	replWait(t, "catch-up", caughtUp(oldPrimary, newPrimary))
	stopTail()
	if _, err := newPrimary.Promote(); err != nil {
		t.Fatal(err)
	}
	if _, err := newPrimary.LoadDocuments([]string{doc}); err != nil {
		t.Fatal(err)
	}
	nsrv, err := service.New(newPrimary, service.Config{})
	if err != nil {
		t.Fatal(err)
	}
	nts := httptest.NewServer(nsrv)
	defer nts.Close()

	// G follows the new primary to term 2 …
	g, stopG := durableFollower(t, dtd, t.TempDir(), nts.URL)
	replWait(t, "G catching up to term 2", caughtUp(newPrimary, g))
	if got := g.Term(); got != 2 {
		t.Fatalf("G term = %d, want 2", got)
	}
	stopG()
	applied0, epoch0 := g.AppliedSeq(), g.Epoch()

	// … and is then misdirected at the old term-1 primary. Every poll
	// must bounce (the anchor's term is not in the old history), nothing
	// may apply.
	fl := &service.Follower{DB: g, Primary: oldTS.URL, WaitMS: 50, MinBackoff: time.Millisecond}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- fl.Run(ctx) }()
	time.Sleep(250 * time.Millisecond)
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("misdirected follower loop returned %v, want to keep retrying until cancelled", err)
	}
	if got := g.AppliedSeq(); got != applied0 {
		t.Errorf("G applied %d records from a stale source (seq %d -> %d)", got-applied0, applied0, got)
	}
	if got := g.Epoch(); got != epoch0 {
		t.Errorf("G epoch moved %d -> %d against a stale source", epoch0, got)
	}
	if got := g.Term(); got != 2 {
		t.Errorf("G term = %d, want 2 (never regresses)", got)
	}
}

// TestChaosFailoverStaleCheckpointRejected: the bootstrap path must not
// adopt a deposed primary's forked history. A follower at term 2 is
// misdirected at a term-1 primary that has checkpointed *past* the
// follower's applied position — so the feed bounces it to bootstrap, and
// the stale checkpoint, if installed, would silently rewind the follower
// onto the fork (and durably discard its term-2 history). Both guards
// must hold: the bootstrap client refuses the stale source by its term
// header, and ApplyCheckpoint refuses the stale-term checkpoint itself.
func TestChaosFailoverStaleCheckpointRejected(t *testing.T) {
	dtd, doc := replCorpus(t)
	oldPrimary, oldTS := failoverPrimary(t, dtd, t.TempDir())
	if _, err := oldPrimary.LoadDocuments([]string{doc}); err != nil {
		t.Fatal(err)
	}
	newPrimary, stopTail := durableFollower(t, dtd, t.TempDir(), oldTS.URL)
	replWait(t, "catch-up", caughtUp(oldPrimary, newPrimary))
	stopTail()
	if _, err := newPrimary.Promote(); err != nil {
		t.Fatal(err)
	}
	nsrv, err := service.New(newPrimary, service.Config{})
	if err != nil {
		t.Fatal(err)
	}
	nts := httptest.NewServer(nsrv)
	defer nts.Close()

	// G follows the new primary to term 2 …
	g, stopG := durableFollower(t, dtd, t.TempDir(), nts.URL)
	replWait(t, "G catching up to term 2", caughtUp(newPrimary, g))
	if got := g.Term(); got != 2 {
		t.Fatalf("G term = %d, want 2", got)
	}
	stopG()

	// … while the deposed primary keeps extending its fork and writes a
	// checkpoint well past G's applied position.
	for i := 0; i < 3; i++ {
		if _, err := oldPrimary.LoadDocuments([]string{doc}); err != nil {
			t.Fatal(err)
		}
	}
	if err := oldPrimary.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	applied0, articles0, boots0 := g.AppliedSeq(), replArticleCount(t, g), g.Rebootstraps()

	// Misdirect G at the deposed primary: every handshake (feed bounce →
	// checkpoint bootstrap) must be refused, nothing may install.
	fl := &service.Follower{DB: g, Primary: oldTS.URL, WaitMS: 50,
		MinBackoff: time.Millisecond, BreakerCooldown: 2 * time.Millisecond}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- fl.Run(ctx) }()
	time.Sleep(250 * time.Millisecond)
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("misdirected follower loop returned %v, want to keep retrying until cancelled", err)
	}
	if got := g.AppliedSeq(); got != applied0 {
		t.Errorf("G applied seq moved %d -> %d against a stale checkpoint", applied0, got)
	}
	if got := g.Term(); got != 2 {
		t.Errorf("G term = %d, want 2 (stale checkpoint must never install)", got)
	}
	if got := replArticleCount(t, g); got != articles0 {
		t.Errorf("G articles = %d, want %d (forked history adopted)", got, articles0)
	}
	if got := g.Rebootstraps(); got != boots0 {
		t.Errorf("G counted %d bootstraps from a stale source, want 0", got-boots0)
	}
	// The direct guard, on the exact checkpoint the wire would carry: a
	// term-1 checkpoint past the applied position is ErrStaleTerm.
	path, _, ok, err := oldPrimary.NewestCheckpointFile()
	if err != nil || !ok {
		t.Fatalf("old primary checkpoint: ok=%v err=%v", ok, err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	ck, err := wal.DecodeCheckpoint(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if ck.Term != 1 || ck.Seq <= applied0 {
		t.Fatalf("stale checkpoint (seq %d, term %d) does not cover the dangerous shape (applied %d)", ck.Seq, ck.Term, applied0)
	}
	if err := g.ApplyCheckpoint(ck); !errors.Is(err, sgmldb.ErrStaleTerm) {
		t.Fatalf("ApplyCheckpoint(stale term) = %v, want ErrStaleTerm", err)
	}
}

// TestChaosFailoverIdleRejoinConverges: a deposed primary whose stale
// unshipped suffix reaches *past* the idle new primary's last record
// must still detect the divergence on its first poll. Before the fix the
// feed long-poll parked on `after >= seq` and served empty 200s forever —
// the rejoiner looked healthy while serving its forked suffix to readers.
func TestChaosFailoverIdleRejoinConverges(t *testing.T) {
	dtd, doc := replCorpus(t)
	pdir := t.TempDir()
	primary, ts := failoverPrimary(t, dtd, pdir)
	for i := 0; i < 2; i++ {
		if _, err := primary.LoadDocuments([]string{doc}); err != nil {
			t.Fatal(err)
		}
	}
	follower, stopTail := durableFollower(t, dtd, t.TempDir(), ts.URL)
	replWait(t, "catch-up", caughtUp(primary, follower))
	stopTail()

	// The doomed primary commits an unshipped suffix, then dies.
	for i := 0; i < 2; i++ {
		if _, err := primary.LoadDocuments([]string{doc}); err != nil {
			t.Fatal(err)
		}
	}
	ts.Close()
	primary.Close()

	// Promote the survivor — and leave the cluster idle: no new writes, so
	// the rejoiner's stale anchor stays ahead of the new primary's log.
	if _, err := follower.Promote(); err != nil {
		t.Fatal(err)
	}
	wantArticles := replArticleCount(t, follower)
	nsrv, err := service.New(follower, service.Config{})
	if err != nil {
		t.Fatal(err)
	}
	nts := httptest.NewServer(nsrv)
	defer nts.Close()

	// The deposed primary rejoins from its own directory. Its first poll
	// anchors past the idle new primary's last record; it must get the 409
	// that triggers the truncating re-bootstrap, not park on empty 200s.
	rejoiner, _ := durableFollower(t, dtd, pdir, nts.URL)
	replWait(t, "idle rejoiner converging", caughtUp(follower, rejoiner))
	if got := rejoiner.Term(); got != 2 {
		t.Errorf("rejoiner term = %d, want 2", got)
	}
	if got := replArticleCount(t, rejoiner); got != wantArticles {
		t.Errorf("rejoiner articles = %d, want %d (stale suffix must not survive)", got, wantArticles)
	}
	if got := rejoiner.Rebootstraps(); got < 1 {
		t.Errorf("rejoiner Rebootstraps = %d, want >= 1 (divergence must force a bootstrap)", got)
	}
	mustFsckClean(t, pdir, "rejoined old primary")
}

// TestChaosFailoverReplicaGapUnit pins the typed contract ApplyRecord
// reports when the stream skips past the applied position: ErrReplicaGap
// (re-bootstrap), distinct from the plain out-of-order error and from
// ErrStaleTerm.
func TestChaosFailoverReplicaGapUnit(t *testing.T) {
	dtd, doc := replCorpus(t)
	fdb, err := sgmldb.OpenFollower(dtd)
	if err != nil {
		t.Fatal(err)
	}
	if err := fdb.ApplyRecord(wal.Record{Kind: wal.KindSchema, Seq: 1, Term: 1, Schema: dtd}); err != nil {
		t.Fatal(err)
	}
	// Seq 3 with only 1 applied: a gap, typed for re-bootstrap.
	err = fdb.ApplyRecord(wal.Record{Kind: wal.KindLoad, Seq: 3, Term: 1, Docs: []string{doc}})
	if !errors.Is(err, sgmldb.ErrReplicaGap) {
		t.Fatalf("gap apply: err = %v, want ErrReplicaGap", err)
	}
	if sgmldb.Code(err) != sgmldb.CodeReplicaGap {
		t.Fatalf("gap apply code = %q, want REPLICA_GAP", sgmldb.Code(err))
	}
	// A stale-term record is the other typed refusal.
	if err := fdb.ApplyRecord(wal.Record{Kind: wal.KindTerm, Seq: 2, Term: 3}); err != nil {
		t.Fatal(err)
	}
	err = fdb.ApplyRecord(wal.Record{Kind: wal.KindLoad, Seq: 3, Term: 1, Docs: []string{doc}})
	if !errors.Is(err, sgmldb.ErrStaleTerm) {
		t.Fatalf("stale-term apply: err = %v, want ErrStaleTerm", err)
	}
	// And a promoted (non-follower) database refuses applies outright.
	pdb, err := sgmldb.OpenDTD(dtd)
	if err != nil {
		t.Fatal(err)
	}
	err = pdb.ApplyRecord(wal.Record{Kind: wal.KindLoad, Seq: 1, Term: 1, Docs: []string{doc}})
	if !errors.Is(err, sgmldb.ErrNotFollower) {
		t.Fatalf("apply on non-follower: err = %v, want ErrNotFollower", err)
	}
}
