package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"sgmldb"
	"sgmldb/internal/wal"
)

// TestFollowerBackoffJitter: retry delays are full-jitter — bounded by
// the exponential ceiling, never zero, and actually spread out. A
// deterministic doubling would make every follower of a dead primary
// retry in synchronized waves; jitter is what breaks the thundering
// herd, so its absence is a bug worth a regression test.
func TestFollowerBackoffJitter(t *testing.T) {
	f := &Follower{MinBackoff: 8 * time.Millisecond, MaxBackoff: 100 * time.Millisecond}
	seen := map[time.Duration]bool{}
	for attempt := 0; attempt < 8; attempt++ {
		ceil := 8 * time.Millisecond << attempt
		if ceil > 100*time.Millisecond {
			ceil = 100 * time.Millisecond
		}
		for i := 0; i < 200; i++ {
			d := f.backoffDelay(attempt)
			if d <= 0 || d > ceil {
				t.Fatalf("backoffDelay(%d) = %v, want in (0, %v]", attempt, d, ceil)
			}
			seen[d] = true
		}
	}
	if len(seen) < 50 {
		t.Fatalf("backoffDelay produced only %d distinct delays over 1600 draws — not jittered", len(seen))
	}
	// Huge attempt counts must not overflow the shift into a negative
	// ceiling: the cap holds forever.
	for _, attempt := range []int{31, 63, 1 << 20} {
		if d := f.backoffDelay(attempt); d <= 0 || d > 100*time.Millisecond {
			t.Fatalf("backoffDelay(%d) = %v, want in (0, 100ms]", attempt, d)
		}
	}
}

// TestFollowerRejectsStaleSource: a feed response whose Sgmldb-Term
// header is behind the follower's own term is a deposed primary still
// serving its old history. The poll must drop the entire response
// before decoding a single frame — applying even one record from a
// stale term would fork the replica.
func TestFollowerRejectsStaleSource(t *testing.T) {
	dtd, doc := readCorpus(t)
	fdb, err := sgmldb.OpenFollower(dtd)
	if err != nil {
		t.Fatal(err)
	}
	// Move the follower to term 2 the way the wire would: a shipped
	// promotion record.
	if err := fdb.ApplyRecord(wal.Record{Kind: wal.KindSchema, Seq: 1, Term: 1, Schema: dtd}); err != nil {
		t.Fatal(err)
	}
	if err := fdb.ApplyRecord(wal.Record{Kind: wal.KindTerm, Seq: 2, Term: 2}); err != nil {
		t.Fatal(err)
	}
	if got := fdb.Term(); got != 2 {
		t.Fatalf("follower term = %d, want 2", got)
	}

	// A fake old primary: happily serves a decodable term-1 frame at the
	// follower's anchor, headers stamped term 1.
	body := wal.EncodeFrame(wal.Record{Kind: wal.KindLoad, Seq: 3, Term: 1, Docs: []string{doc}})
	served := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served++
		w.Header().Set(headerSeq, "3")
		w.Header().Set(headerPrimarySeq, "3")
		w.Header().Set(headerTerm, "1")
		w.WriteHeader(http.StatusOK)
		w.Write(body)
	}))
	defer ts.Close()

	f := &Follower{DB: fdb, Primary: ts.URL, WaitMS: 50}
	progressed, perr := f.poll(context.Background())
	if served == 0 {
		t.Fatal("fake primary never served")
	}
	if progressed || !errors.Is(perr, sgmldb.ErrStaleTerm) {
		t.Fatalf("poll from stale source = (progressed %v, %v), want (false, ErrStaleTerm)", progressed, perr)
	}
	if got := fdb.AppliedSeq(); got != 2 {
		t.Fatalf("follower applied %d after stale-source poll, want 2 (nothing applied)", got)
	}
}

// TestFollowerGapRebootstraps: a feed stream that skips records — here a
// proxy silently dropping the first frame of one response — must not
// apply around the hole. ApplyRecord reports ErrReplicaGap, the loop
// re-bootstraps from the primary's checkpoint, and the follower still
// converges to exactly the primary's state. The rebootstrap is counted
// in the follower database's telemetry.
func TestFollowerGapRebootstraps(t *testing.T) {
	dtd, doc := readCorpus(t)
	pdb := openPrimary(t, dtd)
	if _, err := pdb.LoadDocuments([]string{doc}); err != nil {
		t.Fatal(err)
	}
	// The checkpoint the gapped follower will re-bootstrap from — taken
	// before the last two loads, so those ship as feed frames the proxy
	// can drop one of.
	if err := pdb.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := pdb.LoadDocuments([]string{doc}); err != nil {
			t.Fatal(err)
		}
	}
	srv, err := New(pdb, Config{})
	if err != nil {
		t.Fatal(err)
	}
	real := httptest.NewServer(srv)
	defer real.Close()

	// Proxy: pass everything through, but cut the first frame out of the
	// first non-empty feed body — the wire signature of a lossy relay.
	var dropped atomic.Bool
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		status, hdr, body := proxyGet(t, real.URL+r.URL.String())
		if !dropped.Load() && status == http.StatusOK && strings.HasPrefix(r.URL.Path, "/v1/feed") && len(body) > 0 {
			_, n, derr := wal.DecodeFrame(body)
			if derr == nil && n < len(body) {
				body = body[n:]
				dropped.Store(true)
			}
		}
		for k, vs := range hdr {
			for _, v := range vs {
				w.Header().Add(k, v)
			}
		}
		w.Header().Set("Content-Length", strconv.Itoa(len(body)))
		w.WriteHeader(status)
		w.Write(body)
	}))
	defer proxy.Close()

	fdb, err := sgmldb.OpenFollower(dtd)
	if err != nil {
		t.Fatal(err)
	}
	f := &Follower{DB: fdb, Primary: proxy.URL, WaitMS: 100, MinBackoff: time.Millisecond}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- f.Run(ctx) }()
	defer func() {
		cancel()
		if err := <-done; !errors.Is(err, context.Canceled) {
			t.Errorf("follower loop: %v", err)
		}
	}()

	waitFor(t, "convergence across the gap", func() bool {
		seq, err := pdb.FeedSeq()
		return err == nil && fdb.AppliedSeq() == seq
	})
	if !dropped.Load() {
		t.Fatal("proxy never dropped a frame — the gap path was not exercised")
	}
	if fdb.Epoch() != pdb.Epoch() {
		t.Fatalf("epochs diverged: follower %d, primary %d", fdb.Epoch(), pdb.Epoch())
	}
	if got := fdb.Rebootstraps(); got < 1 {
		t.Fatalf("follower Rebootstraps = %d, want >= 1", got)
	}
}

func proxyGet(t *testing.T, url string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("proxy upstream: %v", err)
	}
	defer resp.Body.Close()
	body := make([]byte, 0, 1024)
	buf := make([]byte, 32<<10)
	for {
		n, rerr := resp.Body.Read(buf)
		body = append(body, buf[:n]...)
		if rerr != nil {
			break
		}
	}
	return resp.StatusCode, resp.Header, body
}

// TestServicePromoteEndpoint: POST /v1/promote flips a durable follower
// into a writable primary and reports the new term; a second promote —
// or one against a node that was never a follower — is 409 NOT_FOLLOWER
// (the caller learns the first promote won). The OnPromote hook fires
// exactly once with the new term.
func TestServicePromoteEndpoint(t *testing.T) {
	dtd, doc := readCorpus(t)
	pdb := openPrimary(t, dtd)
	if _, err := pdb.LoadDocuments([]string{doc}); err != nil {
		t.Fatal(err)
	}
	srv, err := New(pdb, Config{})
	if err != nil {
		t.Fatal(err)
	}
	pts := httptest.NewServer(srv)
	defer pts.Close()

	fdb, err := sgmldb.OpenFollower(dtd, sgmldb.WithDataDir(t.TempDir()), sgmldb.WithCheckpointEvery(-1))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fdb.Close() })
	fl := &Follower{DB: fdb, Primary: pts.URL, WaitMS: 100, MinBackoff: time.Millisecond}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- fl.Run(ctx) }()
	waitFor(t, "catch-up", func() bool {
		seq, err := pdb.FeedSeq()
		return err == nil && fdb.AppliedSeq() == seq
	})
	cancel()
	<-done

	var hookTerm uint64
	fsrv, err := New(fdb, Config{})
	if err != nil {
		t.Fatal(err)
	}
	fsrv.OnPromote = func(term uint64) { hookTerm = term }
	fts := httptest.NewServer(fsrv)
	defer fts.Close()

	resp, err := http.Post(fts.URL+"/v1/promote", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var promoted struct {
		Promoted bool   `json:"promoted"`
		Term     uint64 `json:"term"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&promoted); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !promoted.Promoted || promoted.Term != 2 {
		t.Fatalf("promote: status %d, body %+v, want 200/term 2", resp.StatusCode, promoted)
	}
	if hookTerm != 2 {
		t.Fatalf("OnPromote hook saw term %d, want 2", hookTerm)
	}
	if fdb.IsFollower() {
		t.Fatal("database still a follower after promote")
	}
	if _, err := fdb.LoadDocuments([]string{doc}); err != nil {
		t.Fatalf("load on promoted node: %v", err)
	}

	// Second promote: 409 NOT_FOLLOWER.
	resp, err = http.Post(fts.URL+"/v1/promote", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var eb errorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict || eb.Error.Code != sgmldb.CodeNotFollower {
		t.Fatalf("second promote: status %d code %q, want 409 NOT_FOLLOWER", resp.StatusCode, eb.Error.Code)
	}
}

// TestServiceHealthFailoverShape: the failover telemetry keys are wire
// contract — monitors alert on them, so a renamed or vanished key is a
// silent monitoring outage. They are present on every node, not just
// replicating ones.
func TestServiceHealthFailoverShape(t *testing.T) {
	dtd, _ := readCorpus(t)
	pdb := openPrimary(t, dtd)
	srv, err := New(pdb, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	status, _, body := rawGet(t, ts, "/v1/health")
	if status != http.StatusOK {
		t.Fatalf("health: status %d", status)
	}
	var health map[string]any
	if err := json.Unmarshal(body, &health); err != nil {
		t.Fatalf("health body: %v", err)
	}
	for _, key := range []string{"term", "promotions", "rebootstraps", "breaker_open"} {
		if _, ok := health[key]; !ok {
			t.Errorf("health body missing %q: %s", key, body)
		}
	}
	if got, ok := health["term"].(float64); !ok || got != 1 {
		t.Errorf("health term = %v, want 1 (fresh durable log)", health["term"])
	}

	// The engine Stats JSON shape carries the same four fields.
	raw, err := json.Marshal(pdb.Stats())
	if err != nil {
		t.Fatal(err)
	}
	var stats map[string]any
	if err := json.Unmarshal(raw, &stats); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"Term", "Promotions", "Rebootstraps", "BreakerOpen"} {
		if _, ok := stats[key]; !ok {
			t.Errorf("Stats JSON missing %q", key)
		}
	}
}

// TestFollowerBreakerOpens: when every bootstrap attempt fails, the
// circuit breaker opens after the threshold and the state is visible in
// the follower database's telemetry; when a bootstrap finally succeeds
// the breaker closes again.
func TestFollowerBreakerOpens(t *testing.T) {
	dtd, doc := readCorpus(t)
	pdb := openPrimary(t, dtd)
	for i := 0; i < 3; i++ {
		if _, err := pdb.LoadDocuments([]string{doc}); err != nil {
			t.Fatal(err)
		}
	}
	if err := pdb.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	srv, err := New(pdb, Config{})
	if err != nil {
		t.Fatal(err)
	}
	real := httptest.NewServer(srv)
	defer real.Close()

	// Proxy: force the bootstrap path (410 on every feed) and fail the
	// checkpoint fetch until released.
	var releaseCkpt atomic.Bool
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case strings.HasPrefix(r.URL.Path, "/v1/feed") && !releaseCkpt.Load():
			w.WriteHeader(http.StatusGone)
			fmt.Fprint(w, `{"error":{"code":"SEQ_TRUNCATED","message":"forced"}}`)
		case strings.HasPrefix(r.URL.Path, "/v1/checkpoint") && !releaseCkpt.Load():
			w.WriteHeader(http.StatusInternalServerError)
			fmt.Fprint(w, `{"error":{"code":"INTERNAL","message":"forced"}}`)
		default:
			status, hdr, body := proxyGet(t, real.URL+r.URL.String())
			for k, vs := range hdr {
				for _, v := range vs {
					w.Header().Add(k, v)
				}
			}
			w.WriteHeader(status)
			w.Write(body)
		}
	}))
	defer proxy.Close()

	fdb, err := sgmldb.OpenFollower(dtd)
	if err != nil {
		t.Fatal(err)
	}
	f := &Follower{
		DB: fdb, Primary: proxy.URL, WaitMS: 50,
		MinBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond,
		BreakerThreshold: 3, BreakerCooldown: 5 * time.Millisecond,
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- f.Run(ctx) }()
	defer func() {
		cancel()
		if err := <-done; !errors.Is(err, context.Canceled) {
			t.Errorf("follower loop: %v", err)
		}
	}()

	waitFor(t, "breaker to open", fdb.BreakerOpen)
	releaseCkpt.Store(true)
	waitFor(t, "breaker to close after a successful bootstrap", func() bool {
		return !fdb.BreakerOpen() && fdb.Rebootstraps() >= 1
	})
	waitFor(t, "convergence", func() bool {
		seq, err := pdb.FeedSeq()
		return err == nil && fdb.AppliedSeq() == seq
	})
}

// TestFollowerBreakerClosesOnPollSuccess: the loop can also recover
// without ever completing a bootstrap — the primary's retained log still
// covers the follower's anchor once the fault clears, so a plain poll
// succeeds. The breaker must close on that path too; leaving it open
// would report breaker_open in Stats and /v1/health forever and pace
// every later transient retry at the breaker cooldown instead of the
// jittered backoff.
func TestFollowerBreakerClosesOnPollSuccess(t *testing.T) {
	dtd, doc := readCorpus(t)
	pdb := openPrimary(t, dtd)
	for i := 0; i < 2; i++ {
		if _, err := pdb.LoadDocuments([]string{doc}); err != nil {
			t.Fatal(err)
		}
	}
	srv, err := New(pdb, Config{})
	if err != nil {
		t.Fatal(err)
	}
	real := httptest.NewServer(srv)
	defer real.Close()

	// Until released, force the bootstrap path (410 on every feed) and
	// fail every checkpoint fetch, so the breaker opens. The primary never
	// checkpoints, so after release the follower's anchor is still in the
	// retained log and recovery happens via a plain successful poll — no
	// bootstrap ever completes.
	var release atomic.Bool
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !release.Load() {
			if strings.HasPrefix(r.URL.Path, "/v1/feed") {
				w.WriteHeader(http.StatusGone)
				fmt.Fprint(w, `{"error":{"code":"SEQ_TRUNCATED","message":"forced"}}`)
			} else {
				w.WriteHeader(http.StatusInternalServerError)
				fmt.Fprint(w, `{"error":{"code":"INTERNAL","message":"forced"}}`)
			}
			return
		}
		status, hdr, body := proxyGet(t, real.URL+r.URL.String())
		for k, vs := range hdr {
			for _, v := range vs {
				w.Header().Add(k, v)
			}
		}
		w.WriteHeader(status)
		w.Write(body)
	}))
	defer proxy.Close()

	fdb, err := sgmldb.OpenFollower(dtd)
	if err != nil {
		t.Fatal(err)
	}
	f := &Follower{
		DB: fdb, Primary: proxy.URL, WaitMS: 50,
		MinBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond,
		BreakerThreshold: 3, BreakerCooldown: 5 * time.Millisecond,
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- f.Run(ctx) }()
	defer func() {
		cancel()
		if err := <-done; !errors.Is(err, context.Canceled) {
			t.Errorf("follower loop: %v", err)
		}
	}()

	waitFor(t, "breaker to open", fdb.BreakerOpen)
	release.Store(true)
	waitFor(t, "convergence via plain polls", func() bool {
		seq, err := pdb.FeedSeq()
		return err == nil && fdb.AppliedSeq() == seq
	})
	waitFor(t, "breaker to close without a bootstrap", func() bool { return !fdb.BreakerOpen() })
	if got := fdb.Rebootstraps(); got != 0 {
		t.Fatalf("follower Rebootstraps = %d, want 0 (recovery was poll-only)", got)
	}
}
