package sgmldb

import "errors"

// Sentinel errors returned (wrapped) by the Database API; test with
// errors.Is.
var (
	// ErrReadOnly is returned by LoadDocument on a snapshot database,
	// which has no DTD mapping to parse and load documents with.
	ErrReadOnly = errors.New("sgmldb: snapshot databases are read-only for documents")

	// ErrUnknownObject is returned when an operation refers to an oid that
	// is not assigned in the instance.
	ErrUnknownObject = errors.New("sgmldb: unknown object")

	// ErrNoMapping is returned by operations that need the DTD mapping
	// (e.g. Export) on a database opened without one.
	ErrNoMapping = errors.New("sgmldb: operation requires the DTD mapping (open with OpenDTD)")
)
