package store

import (
	"fmt"
	"sort"

	"sgmldb/internal/object"
)

// Method is an executable method body registered against a signature in M:
// the μ component of an instance assigns one to each method name.
type Method func(inst *Instance, recv object.OID, args []object.Value) (object.Value, error)

// Instance is a 4-tuple (π, ν, μ, γ) over a schema (Section 5.1):
//
//   - π assigns each class a disjoint finite set of oids (the inherited
//     assignment π(c) = ∪{π_d(c') | c' ≺* c} is derived on demand);
//   - ν maps each oid to a value of the correct type;
//   - μ assigns executable semantics to method names;
//   - γ assigns each persistence root a value of its declared type.
//
// Concurrency: an Instance is versioned copy-on-write (see cow.go). The
// readers (Deref, ClassOf, Root, Extent, …) are map lookups through the
// layer chain and safe to call from any number of goroutines, provided no
// mutator (NewObject, SetValue, SetRoot, BindMethod) runs on the same
// layer at the same time. The sgmldb facade never mutates a published
// layer: writers stage into a private Begin layer and publish it with an
// atomic pointer swap, so the hot query path pays no per-Deref
// synchronisation and never blocks on a load.
type Instance struct {
	schema *Schema
	nextID object.OID

	// base is the copy-on-write parent layer (nil for a flat instance):
	// reads fall through to it on a miss, mutations stay in this layer.
	base  *Instance
	depth int    // chain length below this layer
	epoch uint64 // version number, bumped by Begin

	class  map[object.OID]string       // π_d, by oid (this layer only)
	extent map[string][]object.OID     // π_d, by class, in creation order (this layer only)
	values map[object.OID]object.Value // ν (this layer only)
	roots  map[string]object.Value     // γ (this layer only)
	method map[string]Method           // μ, keyed Class::Name (this layer only)
}

// NewInstance returns an empty instance of the schema.
func NewInstance(schema *Schema) *Instance {
	return &Instance{
		schema: schema,
		nextID: 1,
		class:  make(map[object.OID]string),
		extent: make(map[string][]object.OID),
		values: make(map[object.OID]object.Value),
		roots:  make(map[string]object.Value),
		method: make(map[string]Method),
	}
}

// Schema returns the schema the instance conforms to.
func (in *Instance) Schema() *Schema { return in.schema }

// NewObject creates an object of the given class with value v and returns
// its fresh oid. The class must be declared; the value is checked lazily by
// Check, not here, so that mutually referencing objects can be built in any
// order.
func (in *Instance) NewObject(class string, v object.Value) (object.OID, error) {
	if !in.schema.Hierarchy().Has(class) {
		return 0, fmt.Errorf("store: new object of undeclared class %q", class)
	}
	o := in.nextID
	in.nextID++
	in.class[o] = class
	in.extent[class] = append(in.extent[class], o)
	if v == nil {
		v = object.Nil{}
	}
	in.values[o] = v
	return o, nil
}

// SetValue updates ν(o). On a copy-on-write layer the new value shadows
// the base layer's; the base itself is untouched.
func (in *Instance) SetValue(o object.OID, v object.Value) error {
	if _, ok := in.ClassOf(o); !ok {
		return fmt.Errorf("store: set value of unknown oid %s", o)
	}
	if v == nil {
		v = object.Nil{}
	}
	in.values[o] = v
	return nil
}

// Deref returns ν(o) and whether the oid is assigned.
func (in *Instance) Deref(o object.OID) (object.Value, bool) {
	for l := in; l != nil; l = l.base {
		if v, ok := l.values[o]; ok {
			return v, true
		}
	}
	return nil, false
}

// ClassOf returns the (most specific) class of an oid under π_d.
func (in *Instance) ClassOf(o object.OID) (string, bool) {
	for l := in; l != nil; l = l.base {
		if c, ok := l.class[o]; ok {
			return c, true
		}
	}
	return "", false
}

// Extent returns π(c): the oids of class c and all of its subclasses, in
// creation order.
func (in *Instance) Extent(c string) []object.OID {
	subs := in.schema.Hierarchy().Subclasses(c)
	var out []object.OID
	for _, s := range subs {
		for l := in; l != nil; l = l.base {
			out = append(out, l.extent[s]...)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// DirectExtent returns π_d(c): the oids created directly in class c, in
// creation order.
func (in *Instance) DirectExtent(c string) []object.OID {
	// Base layers hold the older (smaller) oids: append bottom-up.
	var layers []*Instance
	n := 0
	for l := in; l != nil; l = l.base {
		layers = append(layers, l)
		n += len(l.extent[c])
	}
	out := make([]object.OID, 0, n)
	for i := len(layers) - 1; i >= 0; i-- {
		out = append(out, layers[i].extent[c]...)
	}
	return out
}

// Objects returns every assigned oid in ascending order.
func (in *Instance) Objects() []object.OID {
	out := make([]object.OID, 0, in.NumObjects())
	for l := in; l != nil; l = l.base {
		for o := range l.class {
			out = append(out, o)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NumObjects reports |O|. Oids are created exactly once (nextID carries
// over into copy-on-write layers), so the per-layer counts are disjoint.
func (in *Instance) NumObjects() int {
	n := 0
	for l := in; l != nil; l = l.base {
		n += len(l.class)
	}
	return n
}

// SetRoot assigns γ(name) = v. The root must be declared in the schema.
func (in *Instance) SetRoot(name string, v object.Value) error {
	if _, ok := in.schema.RootType(name); !ok {
		return fmt.Errorf("store: undeclared persistence root %q", name)
	}
	if v == nil {
		v = object.Nil{}
	}
	in.roots[name] = v
	return nil
}

// Root returns γ(name) and whether it has been assigned.
func (in *Instance) Root(name string) (object.Value, bool) {
	for l := in; l != nil; l = l.base {
		if v, ok := l.roots[name]; ok {
			return v, true
		}
	}
	return nil, false
}

// BindMethod attaches the executable body for Class::Name.
func (in *Instance) BindMethod(class, name string, m Method) error {
	if !in.schema.Hierarchy().Has(class) {
		return fmt.Errorf("store: method on undeclared class %q", class)
	}
	in.method[class+"::"+name] = m
	return nil
}

// HasMethodNamed reports whether any class binds a method with this name
// (used by the calculus to decide whether a function call is a method
// dispatch).
func (in *Instance) HasMethodNamed(name string) bool {
	for l := in; l != nil; l = l.base {
		for key := range l.method {
			if i := len(key) - len(name); i > 2 && key[i:] == name && key[i-2:i] == "::" {
				return true
			}
		}
	}
	return false
}

// methodOf resolves μ(key) through the layer chain.
func (in *Instance) methodOf(key string) (Method, bool) {
	for l := in; l != nil; l = l.base {
		if m, ok := l.method[key]; ok {
			return m, true
		}
	}
	return nil, false
}

// Invoke runs method name on receiver o, resolving the body along the
// inheritance order (most specific class first).
func (in *Instance) Invoke(o object.OID, name string, args ...object.Value) (object.Value, error) {
	c, ok := in.ClassOf(o)
	if !ok {
		return nil, fmt.Errorf("store: invoke on unknown oid %s", o)
	}
	// Walk c then its superclasses (breadth-first) for a binding.
	queue := []string{c}
	seen := map[string]bool{c: true}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if m, ok := in.methodOf(cur + "::" + name); ok {
			return m(in, o, args)
		}
		for _, p := range in.schema.Hierarchy().Parents(cur) {
			if !seen[p] {
				seen[p] = true
				queue = append(queue, p)
			}
		}
	}
	return nil, fmt.Errorf("store: no method %q on class %s", name, c)
}

// Check validates the instance against the schema:
//
//   - every object value is in the domain of its class type
//     (ν(o) ∈ dom(σ(c)) for o ∈ π_d(c));
//   - every assigned root value is in the domain of its declared type;
//   - every oid reachable from a value is assigned;
//   - every class constraint holds on every object of the class.
//
// It returns all violations, not only the first.
func (in *Instance) Check() []error {
	var errs []error
	h := in.schema.Hierarchy()
	classOf := func(o object.OID) (string, bool) { return in.ClassOf(o) }
	assigned := func(o object.OID) bool { _, ok := in.Deref(o); return ok }
	for _, c := range h.Classes() {
		t, _ := h.TypeOf(c)
		for _, o := range in.DirectExtent(c) {
			v, _ := in.Deref(o)
			if !object.MemberOf(v, t, h, classOf) {
				errs = append(errs, fmt.Errorf("store: ν(%s) = %s is not in dom(σ(%s)) = %s", o, v, c, t))
			}
			if dangling := danglingOIDs(v, assigned); len(dangling) > 0 {
				errs = append(errs, fmt.Errorf("store: object %s references unassigned oids %v", o, dangling))
			}
			for _, con := range in.schema.Constraints(c) {
				if !con.Holds(v, in.Deref) {
					errs = append(errs, ConstraintViolation{Class: c, OID: o, Constraint: con})
				}
			}
		}
	}
	for _, g := range in.schema.Roots() {
		v, ok := in.Root(g)
		if !ok {
			continue
		}
		t, _ := in.schema.RootType(g)
		if !object.MemberOf(v, t, h, classOf) {
			errs = append(errs, fmt.Errorf("store: γ(%s) = %s is not in dom(%s)", g, v, t))
		}
		if dangling := danglingOIDs(v, assigned); len(dangling) > 0 {
			errs = append(errs, fmt.Errorf("store: root %s references unassigned oids %v", g, dangling))
		}
	}
	return errs
}

// danglingOIDs collects oids mentioned in v that are not assigned.
func danglingOIDs(v object.Value, assigned func(object.OID) bool) []object.OID {
	var out []object.OID
	var walk func(object.Value)
	walk = func(v object.Value) {
		switch x := v.(type) {
		case object.OID:
			if !assigned(x) {
				out = append(out, x)
			}
		case *object.Tuple:
			for i := 0; i < x.Len(); i++ {
				walk(x.At(i).Value)
			}
		case *object.List:
			for i := 0; i < x.Len(); i++ {
				walk(x.At(i))
			}
		case *object.Set:
			for i := 0; i < x.Len(); i++ {
				walk(x.At(i))
			}
		case *object.Union_:
			walk(x.Value)
		default:
			// atoms and nil contain no oids
		}
	}
	walk(v)
	return out
}

// Stats summarises the instance for the storage-overhead experiment (B4).
type Stats struct {
	Objects     int            // |O|
	PerClass    map[string]int // |π_d(c)|
	ValueBytes  int            // canonical encoding size of all ν values
	RootValues  int
	Roots       []string
	MethodCount int
}

// Stats computes instance statistics.
func (in *Instance) Stats() Stats {
	st := Stats{
		Objects:  in.NumObjects(),
		PerClass: make(map[string]int),
	}
	methods := make(map[string]bool)
	for l := in; l != nil; l = l.base {
		for _, c := range l.class {
			st.PerClass[c]++
		}
		for k := range l.method {
			methods[k] = true
		}
	}
	st.MethodCount = len(methods)
	in.eachValue(func(_ object.OID, v object.Value) {
		st.ValueBytes += len(object.Key(v))
	})
	in.eachRoot(func(g string, v object.Value) {
		st.Roots = append(st.Roots, g)
		st.RootValues++
		st.ValueBytes += len(object.Key(v))
	})
	sort.Strings(st.Roots)
	return st
}
