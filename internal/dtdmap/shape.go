// Package dtdmap implements Section 3 of the paper: the mapping from SGML
// DTDs to schemas of the extended O₂ model (Figure 1 → Figure 3) and from
// document instances to objects and values (Figure 2 → a database). Each
// element definition becomes a class with a type, constraints and default
// behaviour; sequence groups become ordered tuples, choice groups become
// marked unions, "+"/"*" occurrences become lists, "&" groups become the
// union of their permutations (the Letters type of Section 5.3), ID/IDREF
// attributes become object references, and #PCDATA elements become
// subclasses of Text (EMPTY elements of Bitmap).
package dtdmap

import (
	"fmt"
	"strings"

	"sgmldb/internal/object"
	"sgmldb/internal/sgml"
)

// shape is the compiled form of a content model that both the type
// generator and the instance loader interpret, guaranteeing that the
// generated types and the loaded values agree structurally.
type shape interface {
	// typ returns the object type this shape maps to.
	typ(m *Mapping) object.Type
	// suggestion returns the preferred attribute name for this shape when
	// it becomes a tuple field ("" when none is natural).
	suggestion() string
}

// shapeElem is a reference to a child element: one object of the element's
// class.
type shapeElem struct{ elem string }

func (s shapeElem) typ(m *Mapping) object.Type { return object.Class(m.ClassFor(s.elem)) }
func (s shapeElem) suggestion() string         { return s.elem }

// shapePCData is character data inside a structured model: an object of
// class Text.
type shapePCData struct{}

func (shapePCData) typ(*Mapping) object.Type { return object.Class(TextClass) }
func (shapePCData) suggestion() string       { return "text" }

// shapeList is a "+" or "*" repetition.
type shapeList struct {
	inner    shape
	required bool // "+": at least one
}

func (s shapeList) typ(m *Mapping) object.Type { return object.ListOf(s.inner.typ(m)) }
func (s shapeList) suggestion() string         { return pluralize(s.inner.suggestion()) }

// shapeOpt is a "?" option; absent maps to nil.
type shapeOpt struct{ inner shape }

func (s shapeOpt) typ(m *Mapping) object.Type { return s.inner.typ(m) }
func (s shapeOpt) suggestion() string         { return s.inner.suggestion() }

// shapeField is a named member of a tuple shape.
type shapeField struct {
	name  string
	inner shape
}

// shapeTuple is an ordered aggregation: an ordered tuple.
type shapeTuple struct{ fields []shapeField }

func (s shapeTuple) typ(m *Mapping) object.Type {
	fs := make([]object.TField, len(s.fields))
	for i, f := range s.fields {
		fs[i] = object.TField{Name: f.name, Type: f.inner.typ(m)}
	}
	return object.TupleOf(fs...)
}
func (shapeTuple) suggestion() string { return "" }

// shapeAlt is one alternative of a union shape.
type shapeAlt struct {
	marker string
	inner  shape
}

// shapeUnion is a choice (or an "&" group expanded to its permutations): a
// marked union.
type shapeUnion struct{ alts []shapeAlt }

func (s shapeUnion) typ(m *Mapping) object.Type {
	as := make([]object.TField, len(s.alts))
	for i, a := range s.alts {
		as[i] = object.TField{Name: a.marker, Type: a.inner.typ(m)}
	}
	return object.UnionOf(as...)
}
func (shapeUnion) suggestion() string { return "" }

// compileModel translates a content model into a shape. Group members are
// named after the elements they hold; unnamed nested groups receive
// system-supplied markers a1, a2, … exactly as in Figure 3.
func (m *Mapping) compileModel(model sgml.ContentModel) (shape, error) {
	switch x := model.(type) {
	case sgml.Name:
		return shapeElem{elem: x.Elem}, nil
	case sgml.PCData:
		return shapePCData{}, nil
	case sgml.Occur:
		inner, err := m.compileModel(x.Item)
		if err != nil {
			return nil, err
		}
		switch x.Ind {
		case sgml.Opt:
			return shapeOpt{inner: inner}, nil
		case sgml.Plus:
			return shapeList{inner: inner, required: true}, nil
		default:
			return shapeList{inner: inner}, nil
		}
	case sgml.Seq:
		fields := make([]shapeField, 0, len(x.Items))
		used := map[string]int{}
		sysCount := 0
		for _, it := range x.Items {
			inner, err := m.compileModel(it)
			if err != nil {
				return nil, err
			}
			name := inner.suggestion()
			if name == "" {
				sysCount++
				name = fmt.Sprintf("a%d", sysCount)
			}
			// Disambiguate duplicate member names: title, title2, …
			used[name]++
			if used[name] > 1 {
				name = fmt.Sprintf("%s%d", name, used[name])
			}
			fields = append(fields, shapeField{name: name, inner: inner})
		}
		return shapeTuple{fields: fields}, nil
	case sgml.Choice:
		alts := make([]shapeAlt, 0, len(x.Items))
		sysCount := 0
		used := map[string]bool{}
		for _, it := range x.Items {
			inner, err := m.compileModel(it)
			if err != nil {
				return nil, err
			}
			marker := inner.suggestion()
			if marker == "" || used[marker] {
				sysCount++
				marker = fmt.Sprintf("a%d", sysCount)
				for used[marker] {
					sysCount++
					marker = fmt.Sprintf("a%d", sysCount)
				}
			}
			used[marker] = true
			alts = append(alts, shapeAlt{marker: marker, inner: inner})
		}
		return shapeUnion{alts: alts}, nil
	case sgml.And:
		// The "&" connector admits every permutation of its members; the
		// paper models the result as a marked union of the permutation
		// tuples (the Letters type of Section 5.3).
		if len(x.Items) > maxAndMembers {
			return nil, fmt.Errorf("dtdmap: \"&\" group with %d members expands to %d permutations; restructure the DTD",
				len(x.Items), factorial(len(x.Items)))
		}
		members := make([]shape, len(x.Items))
		for i, it := range x.Items {
			inner, err := m.compileModel(it)
			if err != nil {
				return nil, err
			}
			members[i] = inner
		}
		perms := permutations(len(members))
		alts := make([]shapeAlt, 0, len(perms))
		for i, perm := range perms {
			fields := make([]shapeField, len(perm))
			usedNames := map[string]int{}
			for j, idx := range perm {
				name := members[idx].suggestion()
				if name == "" {
					name = fmt.Sprintf("m%d", idx+1)
				}
				usedNames[name]++
				if usedNames[name] > 1 {
					name = fmt.Sprintf("%s%d", name, usedNames[name])
				}
				fields[j] = shapeField{name: name, inner: members[idx]}
			}
			alts = append(alts, shapeAlt{marker: fmt.Sprintf("a%d", i+1), inner: shapeTuple{fields: fields}})
		}
		return shapeUnion{alts: alts}, nil
	case sgml.Empty, sgml.AnyContent:
		return nil, fmt.Errorf("dtdmap: %s content has no structural shape", model)
	default:
		return nil, fmt.Errorf("dtdmap: unsupported content model %T", model)
	}
}

// maxAndMembers bounds "&" permutation expansion (n! alternatives).
const maxAndMembers = 5

func factorial(n int) int {
	f := 1
	for i := 2; i <= n; i++ {
		f *= i
	}
	return f
}

// permutations returns all permutations of 0..n-1 in lexicographic order.
func permutations(n int) [][]int {
	var out [][]int
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			cp := make([]int, n)
			copy(cp, perm)
			out = append(out, cp)
			return
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
		// Restore lexicographic-ish order: the simple swap recursion does
		// not emit lexicographic order for n ≥ 3, but the order is
		// deterministic, which is what the schema needs.
	}
	rec(0)
	return out
}

// pluralize forms Figure 3's list attribute names: author→authors,
// body→bodies, section→sections, subsectn→subsectns.
func pluralize(name string) string {
	if name == "" {
		return ""
	}
	if strings.HasSuffix(name, "y") && len(name) > 1 && !isVowel(name[len(name)-2]) {
		return name[:len(name)-1] + "ies"
	}
	if strings.HasSuffix(name, "s") || strings.HasSuffix(name, "x") {
		return name + "es"
	}
	return name + "s"
}

func isVowel(c byte) bool {
	switch c {
	case 'a', 'e', 'i', 'o', 'u':
		return true
	}
	return false
}

// constraintsFor derives the Figure 3 constraints from a shape: required
// members must not be nil, "+" lists must not be empty; union shapes scope
// their alternatives' constraints with OnAlt.
func constraintsFor(s shape) []constraintSpec {
	switch x := s.(type) {
	case shapeTuple:
		var out []constraintSpec
		for _, f := range x.fields {
			switch inner := f.inner.(type) {
			case shapeOpt:
				// optional: no constraint
			case shapeList:
				if inner.required {
					out = append(out, constraintSpec{kind: conNotEmpty, attr: f.name})
				}
			case shapeUnion:
				// A required union member must be present.
				out = append(out, constraintSpec{kind: conNotNil, attr: f.name})
			default:
				out = append(out, constraintSpec{kind: conNotNil, attr: f.name})
			}
		}
		return out
	case shapeUnion:
		var out []constraintSpec
		for _, a := range x.alts {
			inner := constraintsFor(a.inner)
			if len(inner) > 0 {
				out = append(out, constraintSpec{kind: conOnAlt, attr: a.marker, inner: inner})
			}
		}
		return out
	default:
		return nil
	}
}

// constraintKind discriminates the constraint specs the mapper emits.
//
//sgmldbvet:closed
type constraintKind int

const (
	conNotNil constraintKind = iota
	conNotEmpty
	conOnAlt
)

type constraintSpec struct {
	kind  constraintKind
	attr  string
	inner []constraintSpec
}
