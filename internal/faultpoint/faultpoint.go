// Package faultpoint provides named fault-injection sites for chaos
// testing. Production code declares a site once, as a package-level var:
//
//	var fpSetRoot = faultpoint.New("dtdmap/set-root")
//
// and hits it on the path under test:
//
//	if err := fpSetRoot.Hit(); err != nil {
//		return err
//	}
//
// A disarmed site — the only state production ever sees — costs one
// atomic load per hit and allocates nothing. Tests arm a site with an
// injector:
//
//	defer faultpoint.Arm("dtdmap/set-root", faultpoint.Error(errBoom))()
//
// and the next Hit runs the injector, which may return an error or panic
// (sites on paths without an error return escalate an injected error to
// a panic themselves, exercising the caller's panic containment).
//
// The sgmldbvet `faultpoint` analyzer keeps the discipline honest: in
// non-test code only package-level New declarations and Hit calls are
// allowed, so injection sites stay enumerable and the arming machinery
// stays test-only.
package faultpoint

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Point is one named injection site. The zero value is not usable;
// declare points with New.
type Point struct {
	name  string
	armed atomic.Bool
	mu    sync.Mutex
	fire  func() error
}

// registry holds every declared point, keyed by name, so tests can
// enumerate the sites (Names) and arm them by name (Arm).
var registry = struct {
	mu     sync.Mutex
	points map[string]*Point
}{points: map[string]*Point{}}

// New declares an injection site. Names are unique across the process;
// declaring the same name twice is a programmer error caught at init
// time. Call New only from package-level var declarations so the set of
// sites is static and enumerable.
func New(name string) *Point {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if _, dup := registry.points[name]; dup {
		//lint:allow panic duplicate faultpoint names are an init-time programmer error
		panic(fmt.Sprintf("faultpoint: duplicate point %q", name))
	}
	p := &Point{name: name}
	registry.points[name] = p
	return p
}

// Name returns the point's registered name.
func (p *Point) Name() string { return p.name }

// Hit fires the site: nil unless a test armed it, in which case the
// injector decides — return an error, panic, or (for probabilistic or
// nth-hit injectors) pass. The disarmed fast path is a single atomic
// load.
func (p *Point) Hit() error {
	if !p.armed.Load() {
		return nil
	}
	p.mu.Lock()
	fire := p.fire
	p.mu.Unlock()
	if fire == nil {
		return nil
	}
	return fire()
}

// arm installs an injector on the point, returning a disarm func.
func (p *Point) arm(fire func() error) func() {
	p.mu.Lock()
	p.fire = fire
	p.mu.Unlock()
	p.armed.Store(fire != nil)
	return func() { p.arm(nil) }
}

// Arm installs an injector on the named point and returns the disarm
// func; the usual pattern is
//
//	defer faultpoint.Arm("text/index-add", faultpoint.Error(errBoom))()
//
// Arm on an undeclared name panics: a chaos test naming a site that no
// longer exists should fail loudly, not silently inject nothing.
func Arm(name string, fire func() error) func() {
	registry.mu.Lock()
	p, ok := registry.points[name]
	registry.mu.Unlock()
	if !ok {
		//lint:allow panic arming an undeclared site is a test programming error
		panic(fmt.Sprintf("faultpoint: no point named %q (declared: %v)", name, Names()))
	}
	return p.arm(fire)
}

// DisarmAll disarms every point (test hygiene between chaos cases).
func DisarmAll() {
	registry.mu.Lock()
	points := make([]*Point, 0, len(registry.points))
	for _, p := range registry.points {
		points = append(points, p)
	}
	registry.mu.Unlock()
	for _, p := range points {
		p.arm(nil)
	}
}

// Names lists every declared site, sorted — the chaos suite iterates
// this so a new injection site cannot be added without test coverage.
func Names() []string {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	out := make([]string, 0, len(registry.points))
	for n := range registry.points {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Error returns an injector that fails every hit with err.
func Error(err error) func() error {
	return func() error { return err }
}

// Panic returns an injector that panics with v on every hit — the
// injection mode for sites on paths without an error return, and for
// exercising panic containment.
func Panic(v any) func() error {
	return func() error {
		//lint:allow panic panic injection is this injector's entire purpose
		panic(v)
	}
}

// After wraps an injector to pass for the first n hits and fire from
// hit n+1 on: faults that strike mid-operation rather than at the first
// opportunity. Safe for concurrent hits.
func After(n int64, fire func() error) func() error {
	var hits atomic.Int64
	return func() error {
		if hits.Add(1) <= n {
			return nil
		}
		return fire()
	}
}

// Once wraps an injector to fire on exactly the first hit and pass
// afterwards: a transient fault the caller should not see twice.
func Once(fire func() error) func() error {
	var done atomic.Bool
	return func() error {
		if done.Swap(true) {
			return nil
		}
		return fire()
	}
}
