package object

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNil: "nil", KindInt: "integer", KindFloat: "float",
		KindString: "string", KindBool: "boolean", KindOID: "oid",
		KindTuple: "tuple", KindList: "list", KindSet: "set", KindUnion: "union",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
	if got := Kind(99).String(); got != "Kind(99)" {
		t.Errorf("unknown kind = %q", got)
	}
}

func TestAtomValues(t *testing.T) {
	if Int(5).Kind() != KindInt || Int(5).String() != "5" {
		t.Error("Int misbehaves")
	}
	if Float(2.5).Kind() != KindFloat || Float(2.5).String() != "2.5" {
		t.Error("Float misbehaves")
	}
	if String_("x").Kind() != KindString || String_("x").String() != `"x"` {
		t.Error("String misbehaves")
	}
	if Bool(true).String() != "true" || Bool(false).String() != "false" {
		t.Error("Bool misbehaves")
	}
	if OID(7).Kind() != KindOID || OID(7).String() != "o7" {
		t.Error("OID misbehaves")
	}
	if (Nil{}).Kind() != KindNil || (Nil{}).String() != "nil" {
		t.Error("Nil misbehaves")
	}
}

func TestTupleOrderMeaningful(t *testing.T) {
	ab := NewTuple(Field{"a", Int(1)}, Field{"b", Int(2)})
	ba := NewTuple(Field{"b", Int(2)}, Field{"a", Int(1)})
	if Equal(ab, ba) {
		t.Error("permuted tuples must be distinct values (ordered tuples)")
	}
	if Key(ab) == Key(ba) {
		t.Error("permuted tuples must have distinct keys")
	}
	if Equiv(ab, ba) {
		t.Error("permuted tuples must not even be ≡")
	}
}

func TestTupleAccessors(t *testing.T) {
	tp := NewTuple(Field{"title", String_("SGML")}, Field{"n", Int(3)})
	if tp.Len() != 2 {
		t.Fatalf("Len = %d", tp.Len())
	}
	if v, ok := tp.Get("title"); !ok || !Equal(v, String_("SGML")) {
		t.Error("Get title failed")
	}
	if _, ok := tp.Get("nope"); ok {
		t.Error("Get nope should fail")
	}
	if tp.Index("n") != 1 || tp.Index("zz") != -1 {
		t.Error("Index wrong")
	}
	if !reflect.DeepEqual(tp.Names(), []string{"title", "n"}) {
		t.Error("Names wrong")
	}
	tp2 := tp.With("n", Int(9))
	if v, _ := tp2.Get("n"); !Equal(v, Int(9)) {
		t.Error("With replace failed")
	}
	if v, _ := tp.Get("n"); !Equal(v, Int(3)) {
		t.Error("With mutated receiver")
	}
	tp3 := tp.With("extra", Bool(true))
	if tp3.Len() != 3 || tp3.Index("extra") != 2 {
		t.Error("With append failed")
	}
	if got := tp.String(); got != `tuple(title: "SGML", n: 3)` {
		t.Errorf("String = %s", got)
	}
}

func TestTupleDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate attribute must panic")
		}
	}()
	NewTuple(Field{"a", Int(1)}, Field{"a", Int(2)})
}

func TestNilFieldNormalised(t *testing.T) {
	tp := NewTuple(Field{"a", nil})
	if v, _ := tp.Get("a"); !IsNil(v) {
		t.Error("nil field should normalise to Nil{}")
	}
	l := NewList(nil, Int(1))
	if !IsNil(l.At(0)) {
		t.Error("nil element should normalise to Nil{}")
	}
}

func TestListOps(t *testing.T) {
	l := NewList(Int(1), Int(2), Int(3), Int(4))
	if l.Len() != 4 || !Equal(l.At(2), Int(3)) {
		t.Fatal("basic list ops")
	}
	if got := l.Slice(1, 3); !Equal(got, NewList(Int(2), Int(3))) {
		t.Errorf("Slice = %s", got)
	}
	if got := l.Slice(-5, 99); !Equal(got, l) {
		t.Errorf("clamped Slice = %s", got)
	}
	if got := l.Slice(3, 1); got.Len() != 0 {
		t.Errorf("empty Slice = %s", got)
	}
	l2 := l.Append(Int(5))
	if l2.Len() != 5 || l.Len() != 4 {
		t.Error("Append must not mutate")
	}
	if got := NewList(Int(1)).String(); got != "list(1)" {
		t.Errorf("String = %s", got)
	}
	es := l.Elems()
	es[0] = Int(99)
	if !Equal(l.At(0), Int(1)) {
		t.Error("Elems must copy")
	}
}

func TestSetSemantics(t *testing.T) {
	s := NewSet(Int(2), Int(1), Int(2), Int(3), Int(1))
	if s.Len() != 3 {
		t.Fatalf("dedup failed: %s", s)
	}
	if !s.Contains(Int(2)) || s.Contains(Int(9)) {
		t.Error("Contains wrong")
	}
	t2 := NewSet(Int(3), Int(4))
	if got := s.Union(t2); got.Len() != 4 {
		t.Errorf("Union = %s", got)
	}
	if got := s.Intersect(t2); !Equal(got, NewSet(Int(3))) {
		t.Errorf("Intersect = %s", got)
	}
	if got := s.Diff(t2); !Equal(got, NewSet(Int(1), Int(2))) {
		t.Errorf("Diff = %s", got)
	}
	if !NewSet(Int(1)).SubsetOf(s) || s.SubsetOf(t2) {
		t.Error("SubsetOf wrong")
	}
	// Sets built in different orders are Equal.
	a := NewSet(String_("x"), String_("y"))
	b := NewSet(String_("y"), String_("x"))
	if !Equal(a, b) || Key(a) != Key(b) {
		t.Error("set equality must be order independent")
	}
}

func TestUnionValue(t *testing.T) {
	u := NewUnion("a1", Int(5))
	if u.Kind() != KindUnion || u.String() != "<a1: 5>" {
		t.Error("union value basics")
	}
	if !Equal(u, NewUnion("a1", Int(5))) || Equal(u, NewUnion("a2", Int(5))) {
		t.Error("union equality")
	}
	if !Equal(UnwrapUnion(NewUnion("a", NewUnion("b", Int(1)))), Int(1)) {
		t.Error("UnwrapUnion must strip nested wrappers")
	}
	if !Equal(UnwrapUnion(Int(3)), Int(3)) {
		t.Error("UnwrapUnion identity on non-unions")
	}
}

func TestKeyInjective(t *testing.T) {
	vals := []Value{
		Nil{}, Int(0), Int(1), Float(0), Float(1), String_(""), String_("0"),
		String_("ab"), String_("a"), Bool(true), Bool(false), OID(1), OID(2),
		NewTuple(), NewTuple(Field{"a", Int(1)}),
		NewTuple(Field{"a", Int(1)}, Field{"b", Int(2)}),
		NewTuple(Field{"b", Int(2)}, Field{"a", Int(1)}),
		NewList(), NewList(Int(1)), NewList(Int(1), Int(2)),
		NewSet(), NewSet(Int(1)), NewSet(Int(1), Int(2)),
		NewUnion("a", Int(1)), NewUnion("b", Int(1)),
		NewList(NewList(Int(1))), NewList(NewSet(Int(1))),
		// Adversarial: nested lengths that could collide under naive
		// concatenation.
		NewTuple(Field{"ab", String_("c")}), NewTuple(Field{"a", String_("bc")}),
		NewList(String_("ab"), String_("c")), NewList(String_("a"), String_("bc")),
	}
	keys := map[string]Value{}
	for _, v := range vals {
		k := Key(v)
		if prev, dup := keys[k]; dup {
			t.Errorf("key collision: %s and %s both have key %q", prev, v, k)
		}
		keys[k] = v
	}
}

func TestEqualMixedKinds(t *testing.T) {
	if Equal(Int(1), Float(1)) {
		t.Error("Int and Float are distinct values")
	}
	if Equal(nil, Int(0)) {
		t.Error("nil interface normalises to Nil{}")
	}
	if !Equal(nil, Nil{}) {
		t.Error("nil interface equals Nil{}")
	}
}

func TestEquivTupleHeterogeneousList(t *testing.T) {
	tp := NewTuple(Field{"A", Int(5)}, Field{"B", Int(6)})
	hl := NewList(NewUnion("A", Int(5)), NewUnion("B", Int(6)))
	if !Equiv(tp, hl) {
		t.Error("[A:5,B:6] ≡ [<A:5>,<B:6>] must hold")
	}
	if !Equiv(hl, tp) {
		t.Error("≡ must be symmetric")
	}
	// Also against singleton-tuple representatives.
	hl2 := NewList(NewTuple(Field{"A", Int(5)}), NewTuple(Field{"B", Int(6)}))
	if !Equiv(tp, hl2) {
		t.Error("[A:5,B:6] ≡ [[A:5],[B:6]] must hold")
	}
	// Wrong order is not equivalent.
	bad := NewList(NewUnion("B", Int(6)), NewUnion("A", Int(5)))
	if Equiv(tp, bad) {
		t.Error("order must matter under ≡")
	}
	// Union value vs singleton tuple.
	if !Equiv(NewUnion("a", Int(1)), NewTuple(Field{"a", Int(1)})) {
		t.Error("<a:1> ≡ [a:1] must hold")
	}
	// Hereditary application.
	nested := NewTuple(Field{"x", tp})
	nestedL := NewTuple(Field{"x", hl})
	if !Equiv(nested, nestedL) {
		t.Error("≡ must apply hereditarily")
	}
	// Sets compared under ≡.
	s1 := NewSet(tp)
	s2 := NewSet(hl)
	if !Equiv(s1, s2) {
		t.Error("sets of ≡ elements are ≡")
	}
	if Equiv(Int(1), String_("1")) {
		t.Error("distinct atoms are not ≡")
	}
}

func TestHeterogeneousListView(t *testing.T) {
	tp := NewTuple(Field{"to", String_("T")}, Field{"from", String_("F")})
	hl := HeterogeneousList(tp)
	if hl.Len() != 2 {
		t.Fatal("length")
	}
	u0 := hl.At(0).(*Union_)
	if u0.Marker != "to" || !Equal(u0.Value, String_("T")) {
		t.Error("element 0 wrong")
	}
	if l, ok := AsList(tp); !ok || !Equal(l, hl) {
		t.Error("AsList on tuple")
	}
	if _, ok := AsList(Int(1)); ok {
		t.Error("AsList on atom must fail")
	}
	if tup, ok := AsTuple(NewUnion("a", Int(1))); !ok || tup.Len() != 1 {
		t.Error("AsTuple on union")
	}
	if _, ok := AsTuple(NewList()); ok {
		t.Error("AsTuple on list must fail")
	}
}

// genValue builds a random value of bounded depth for property tests.
func genValue(r *rand.Rand, depth int) Value {
	if depth <= 0 {
		switch r.Intn(6) {
		case 0:
			return Nil{}
		case 1:
			return Int(r.Intn(10))
		case 2:
			return Float(float64(r.Intn(5)))
		case 3:
			return String_(string(rune('a' + r.Intn(4))))
		case 4:
			return Bool(r.Intn(2) == 0)
		default:
			return OID(uint64(r.Intn(5) + 1))
		}
	}
	switch r.Intn(9) {
	case 0:
		return Nil{}
	case 1:
		return Int(r.Intn(10))
	case 2:
		return String_(string(rune('a' + r.Intn(4))))
	case 3, 4:
		n := r.Intn(3)
		fs := make([]Field, 0, n)
		names := []string{"a", "b", "c"}
		r.Shuffle(len(names), func(i, j int) { names[i], names[j] = names[j], names[i] })
		for i := 0; i < n; i++ {
			fs = append(fs, Field{names[i], genValue(r, depth-1)})
		}
		return NewTuple(fs...)
	case 5, 6:
		n := r.Intn(3)
		es := make([]Value, n)
		for i := range es {
			es[i] = genValue(r, depth-1)
		}
		return NewList(es...)
	case 7:
		n := r.Intn(3)
		es := make([]Value, n)
		for i := range es {
			es[i] = genValue(r, depth-1)
		}
		return NewSet(es...)
	default:
		return NewUnion(string(rune('a'+r.Intn(3))), genValue(r, depth-1))
	}
}

func TestPropertyKeyAgreesWithEqual(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 3000; i++ {
		v := genValue(r, 3)
		w := genValue(r, 3)
		if Equal(v, w) != (Key(v) == Key(w)) {
			t.Fatalf("Key/Equal disagree on %s vs %s", v, w)
		}
	}
}

func TestPropertyEqualImpliesEquiv(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		v := genValue(r, 3)
		if !Equiv(v, v) {
			t.Fatalf("≡ not reflexive on %s", v)
		}
		w := genValue(r, 3)
		if Equal(v, w) && !Equiv(v, w) {
			t.Fatalf("Equal must imply Equiv: %s vs %s", v, w)
		}
		if Equiv(v, w) != Equiv(w, v) {
			t.Fatalf("≡ not symmetric on %s vs %s", v, w)
		}
	}
}

func TestPropertyTupleAlwaysEquivItsHeterogeneousList(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for i := 0; i < 1500; i++ {
		v := genValue(r, 3)
		tp, ok := v.(*Tuple)
		if !ok {
			continue
		}
		if !Equiv(tp, HeterogeneousList(tp)) {
			t.Fatalf("tuple %s not ≡ its heterogeneous list", tp)
		}
	}
}

func TestQuickSetIdempotent(t *testing.T) {
	f := func(xs []int64) bool {
		vs := make([]Value, len(xs))
		for i, x := range xs {
			vs[i] = Int(x)
		}
		s1 := NewSet(vs...)
		s2 := NewSet(s1.Elems()...)
		return Equal(s1, s2) && s1.Len() <= len(xs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickSetAlgebraLaws(t *testing.T) {
	mk := func(xs []int8) *Set {
		vs := make([]Value, len(xs))
		for i, x := range xs {
			vs[i] = Int(int64(x % 8))
		}
		return NewSet(vs...)
	}
	f := func(xs, ys []int8) bool {
		a, b := mk(xs), mk(ys)
		// |A∪B| = |A| + |B| - |A∩B|
		if a.Union(b).Len() != a.Len()+b.Len()-a.Intersect(b).Len() {
			return false
		}
		// A∖B ⊆ A, disjoint from B
		d := a.Diff(b)
		if !d.SubsetOf(a) || d.Intersect(b).Len() != 0 {
			return false
		}
		// union commutative
		return Equal(a.Union(b), b.Union(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValueStringsRoundTripKeyPrefixFreedom(t *testing.T) {
	// Key encodings must be prefix-free enough that concatenation in
	// containers is injective; spot-check tricky neighbours.
	pairs := [][2]Value{
		{NewList(Int(1), Int(2)), NewList(Int(12))},
		{NewList(String_("a"), String_("b")), NewList(String_("ab"))},
		{NewTuple(Field{"a", String_("bc")}), NewTuple(Field{"ab", String_("c")})},
		{NewSet(Int(1), Int(2)), NewSet(Int(12))},
	}
	for _, p := range pairs {
		if Key(p[0]) == Key(p[1]) {
			t.Errorf("collision between %s and %s", p[0], p[1])
		}
	}
	var b strings.Builder
	Nil{}.key(&b)
	if b.String() != "n" {
		t.Error("nil key")
	}
}
