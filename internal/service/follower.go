package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"sgmldb"
	"sgmldb/internal/faultpoint"
	"sgmldb/internal/wal"
)

// Follower is the replication client: it tails a primary's /v1/feed and
// applies the shipped records to a local OpenFollower database. On a 410
// SEQ_TRUNCATED — the primary checkpointed past our anchor — it
// bootstraps from /v1/checkpoint and resumes tailing. Transient failures
// (network, primary restarting, primary draining) back off exponentially
// and retry; the loop runs until ctx is cancelled. Every request anchors
// at DB.AppliedSeq(), so a restarted or reconnected follower resumes
// exactly where it stopped — no record is re-applied or skipped.
type Follower struct {
	DB      *sgmldb.Database // an OpenFollower database
	Primary string           // primary base URL, e.g. http://10.0.0.1:8080
	Key     string           // API key for the primary (empty in open mode)

	// Optional knobs; zero values get serviceable defaults.
	Client     *http.Client
	WaitMS     uint64        // feed long-poll window
	MaxBytes   uint64        // per-response frame budget
	MinBackoff time.Duration // first retry delay
	MaxBackoff time.Duration // retry delay ceiling
}

// fpFollowerApply fails the apply of one shipped record: the chaos suite
// arms it to prove a follower that dies mid-batch resumes from its last
// applied record, not the batch boundary.
var fpFollowerApply = faultpoint.New("service/follower-apply")

func (f *Follower) client() *http.Client {
	if f.Client != nil {
		return f.Client
	}
	return http.DefaultClient
}

func (f *Follower) backoffBounds() (lo, hi time.Duration) {
	lo, hi = f.MinBackoff, f.MaxBackoff
	if lo <= 0 {
		lo = 50 * time.Millisecond
	}
	if hi <= 0 {
		hi = 3 * time.Second
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

// Run tails the primary until ctx is cancelled. It returns ctx.Err() on
// cancellation; any other return is a permanent failure (a DTD mismatch,
// a poisoned stream) that retrying cannot fix.
func (f *Follower) Run(ctx context.Context) error {
	lo, hi := f.backoffBounds()
	backoff := lo
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		progressed, err := f.poll(ctx)
		switch {
		case err == nil:
			backoff = lo
			continue
		case errors.Is(err, errBootstrap):
			if berr := f.bootstrap(ctx); berr == nil {
				backoff = lo
				continue
			} else if ctx.Err() != nil {
				return ctx.Err()
			}
			// Bootstrap failed (primary mid-checkpoint, transient error):
			// fall through to back off and retry the whole handshake.
		case ctx.Err() != nil:
			return ctx.Err()
		case isPermanent(err):
			return err
		}
		if progressed {
			backoff = lo
		}
		select {
		case <-time.After(backoff):
		case <-ctx.Done():
			return ctx.Err()
		}
		if backoff *= 2; backoff > hi {
			backoff = hi
		}
	}
}

// errBootstrap signals poll saw 410 SEQ_TRUNCATED: the anchor precedes
// the primary's retained log and the follower must install a checkpoint.
var errBootstrap = errors.New("service: feed anchor truncated; checkpoint bootstrap required")

// isPermanent classifies apply-side failures retrying cannot fix.
func isPermanent(err error) bool {
	return errors.Is(err, errApply)
}

// errApply wraps a local ApplyRecord failure: the shipped record decoded
// cleanly but would not apply, which re-fetching the same record cannot
// cure.
var errApply = errors.New("service: applying shipped record")

// poll performs one feed round-trip and applies what it got. progressed
// reports whether at least one record applied, so the caller can reset
// its backoff even when the stream then broke.
func (f *Follower) poll(ctx context.Context) (progressed bool, err error) {
	after := f.DB.AppliedSeq()
	url := fmt.Sprintf("%s/v1/feed?after=%d&wait_ms=%d&max_bytes=%d", f.Primary, after, f.waitMS(), f.maxBytes())
	body, hdr, status, err := f.get(ctx, url)
	if err != nil {
		return false, err
	}
	switch status {
	case http.StatusOK:
	case http.StatusGone:
		return false, errBootstrap
	default:
		return false, fmt.Errorf("service: feed: %s", wireError(status, body))
	}
	if seq, perr := strconv.ParseUint(hdr.Get(headerPrimarySeq), 10, 64); perr == nil {
		f.DB.ObservePrimarySeq(seq)
	}
	// Decode and apply frame by frame. A decode failure means the stream
	// was cut mid-frame (a killed primary, a dropped connection): keep
	// what applied, re-anchor, and let the next poll refetch the rest —
	// the same torn-tail tolerance local recovery has.
	off := 0
	for off < len(body) {
		rec, n, derr := wal.DecodeFrame(body[off:])
		if derr != nil {
			return progressed, fmt.Errorf("service: feed stream cut at offset %d: %w", off, derr)
		}
		off += n
		if rec.Seq <= f.DB.AppliedSeq() {
			continue // duplicate delivery after a re-anchor race: skip
		}
		if ferr := fpFollowerApply.Hit(); ferr != nil {
			return progressed, fmt.Errorf("service: apply record %d: %w", rec.Seq, ferr)
		}
		if aerr := f.DB.ApplyRecord(rec); aerr != nil {
			return progressed, fmt.Errorf("%w %d: %w", errApply, rec.Seq, aerr)
		}
		progressed = true
	}
	return progressed, nil
}

// bootstrap fetches and installs the primary's newest checkpoint.
func (f *Follower) bootstrap(ctx context.Context) error {
	body, _, status, err := f.get(ctx, f.Primary+"/v1/checkpoint")
	if err != nil {
		return err
	}
	if status == http.StatusNotFound {
		// No checkpoint on the primary, yet the feed said our anchor is
		// truncated — a prune race; retry the handshake.
		return fmt.Errorf("service: bootstrap: primary has no checkpoint yet")
	}
	if status != http.StatusOK {
		return fmt.Errorf("service: bootstrap: %s", wireError(status, body))
	}
	ck, err := wal.DecodeCheckpoint(bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("service: bootstrap: decoding checkpoint: %w", err)
	}
	if err := f.DB.ApplyCheckpoint(ck); err != nil {
		return fmt.Errorf("service: bootstrap: %w", err)
	}
	return nil
}

// get performs one authenticated GET and slurps the body. A read error
// mid-body returns what arrived: the frame decoder treats the missing
// rest as a stream cut.
func (f *Follower) get(ctx context.Context, url string) (body []byte, hdr http.Header, status int, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, nil, 0, err
	}
	if f.Key != "" {
		req.Header.Set("Authorization", "Bearer "+f.Key)
	}
	resp, err := f.client().Do(req)
	if err != nil {
		return nil, nil, 0, err
	}
	defer resp.Body.Close()
	body, rerr := io.ReadAll(resp.Body)
	if rerr != nil && len(body) == 0 {
		return nil, nil, 0, rerr
	}
	return body, resp.Header, resp.StatusCode, nil
}

// wireError renders an error response for a log line: the envelope's
// code and message when the body parses, the raw status otherwise.
func wireError(status int, body []byte) string {
	var eb errorBody
	if json.Unmarshal(body, &eb) == nil && eb.Error.Code != "" {
		return fmt.Sprintf("%d %s: %s", status, eb.Error.Code, eb.Error.Message)
	}
	return fmt.Sprintf("status %d", status)
}

func (f *Follower) waitMS() uint64 {
	if f.WaitMS > 0 {
		return f.WaitMS
	}
	return feedDefaultWaitMS
}

func (f *Follower) maxBytes() uint64 {
	if f.MaxBytes > 0 {
		return f.MaxBytes
	}
	return feedDefaultMaxB
}
